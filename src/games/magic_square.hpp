// The Mermin-Peres magic square game — pseudo-telepathy (§2's ref [11]).
//
// A 3x3 grid must be filled with +-1 entries; Alice receives a row index
// and answers three entries whose product is +1, Bob receives a column
// index and answers three entries whose product is -1. They win if they
// agree on the shared cell. No classical strategy wins more than 8/9 of
// the time (the grid constraints are jointly unsatisfiable), but two
// shared Bell pairs win with certainty: each party measures the three
// *commuting* Pauli-product observables of its row/column:
//
//        I(x)Z    Z(x)I    Z(x)Z        rows multiply to +I
//        X(x)I    I(x)X    X(x)X        columns multiply to -I
//       -X(x)Z   -Z(x)X    Y(x)Y
//
// This is the strongest form of "coordination without communication" the
// paper's program could package: a constraint satisfied with certainty,
// not merely with elevated probability.
#pragma once

#include <array>

#include "games/game.hpp"
#include "qcore/density.hpp"
#include "util/rng.hpp"

namespace ftl::games {

class MagicSquareGame {
 public:
  MagicSquareGame();

  /// The game as a TwoPartyGame: inputs are row/column indices (3 each);
  /// outputs encode the two free entries of a valid triple (4 each; the
  /// third entry is fixed by the parity constraint).
  [[nodiscard]] TwoPartyGame as_two_party_game() const;

  /// Exact classical value by exhaustive search (= 8/9).
  [[nodiscard]] double classical_value() const;

  struct RoundResult {
    std::array<int, 3> row_entries;  // Alice's +-1 entries for her row
    std::array<int, 3> col_entries;  // Bob's +-1 entries for his column
  };

  /// Plays one quantum round on two shared Bell pairs (exact simulation:
  /// sequential measurement of the commuting observables).
  [[nodiscard]] RoundResult play_quantum(std::size_t row, std::size_t col,
                                         util::Rng& rng) const;

  /// Win predicate: valid parities and agreement on the shared cell.
  [[nodiscard]] bool wins(std::size_t row, std::size_t col,
                          const RoundResult& r) const;

  /// The cell (r, c) observable acting on the full 4-qubit space for the
  /// given party (0 = Alice on qubits {0,1}, 1 = Bob on qubits {2,3}).
  [[nodiscard]] const qcore::CMat& observable(std::size_t r, std::size_t c,
                                              int party) const;

  /// The shared state: |Phi+>_{02} (x) |Phi+>_{13}.
  [[nodiscard]] static qcore::StateVec shared_state();

 private:
  // [r][c][party]
  std::array<std::array<std::array<qcore::CMat, 2>, 3>, 3> obs_;
};

}  // namespace ftl::games

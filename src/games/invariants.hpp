// Invariant checkers for non-local games: box validity, no-signaling, and
// the classical <= quantum <= NPA value sandwich that certifies every
// advantage number this reproduction reports.
#pragma once

#include <string>

#include "games/box.hpp"
#include "games/npa.hpp"
#include "games/seesaw.hpp"
#include "games/strategy.hpp"
#include "games/xor_game.hpp"
#include "sdp/tsirelson.hpp"

namespace ftl::games {

/// Non-negative entries, each conditional distribution sums to 1.
[[nodiscard]] bool is_valid_box(const CorrelationBox& box, double tol = 1e-9);

/// Neither side's marginal depends on the other side's input. Physical
/// (quantum or classical) boxes must satisfy this — it is the paper's
/// "respecting causality" clause.
[[nodiscard]] bool is_no_signaling(const CorrelationBox& box,
                                   double tol = 1e-7);

/// Explains the first violated box law ("negative entry", "distribution at
/// (x,y) sums to ...", "signaling: ..."); empty when valid and no-signaling.
[[nodiscard]] std::string box_violation(const CorrelationBox& box,
                                        double tol = 1e-7);

/// Cross-validates CorrelationBox::from_strategy against the strategy's own
/// expectation values: correlators, marginals, and Born probabilities must
/// agree entry-wise. Returns an explanation, empty on agreement.
[[nodiscard]] std::string box_strategy_mismatch(const CorrelationBox& box,
                                                const QuantumStrategy& s,
                                                double tol = 1e-9);

/// The value sandwich for an XOR game, all in win-probability space:
///
///   classical (exact search)  <=  quantum (Tsirelson SDP)  <=  NPA-1 upper
///   see-saw lower bound       <=  quantum (Tsirelson SDP)
///
/// `npa_upper` is only populated for 2x2-input games (the NPA level-1+AB
/// implementation's domain); it is set to 1.0 otherwise.
struct ValueSandwich {
  double classical = 0.0;
  double seesaw_lower = 0.0;
  double sdp_value = 0.0;
  double npa_upper = 1.0;
  bool has_npa = false;

  /// All orderings hold within tol.
  [[nodiscard]] bool consistent(double tol = 1e-5) const;
  [[nodiscard]] std::string describe() const;
};

/// Computes all four bounds. Solver options default to settings sized for
/// property-test throughput (hundreds of random games per suite).
[[nodiscard]] ValueSandwich value_sandwich(const XorGame& game,
                                           const sdp::GramOptions& sdp_opts,
                                           const SeesawOptions& seesaw_opts);

}  // namespace ftl::games

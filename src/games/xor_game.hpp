// XOR games: two-party games whose win condition depends only on a XOR b.
//
// These are the games §4.1 generalises load balancing to: f(x, y) = 1 means
// the parties should answer differently (route to different servers),
// f(x, y) = 0 means answer the same (co-locate). Their classical value is
// exactly computable by exhaustive sign search and their quantum value by
// Tsirelson's SDP (src/sdp) — the same pipeline the paper ran via Toqito.
#pragma once

#include <vector>

#include "games/affinity.hpp"
#include "games/game.hpp"
#include "sdp/tsirelson.hpp"

namespace ftl::games {

class XorGame {
 public:
  /// `f[x][y]` in {0, 1}: the required value of a XOR b. `input_dist` must
  /// sum to 1.
  XorGame(std::vector<std::vector<int>> f,
          std::vector<std::vector<double>> input_dist);

  /// The load-balancing game of an affinity graph: both parties receive
  /// connected vertices (task types) as inputs; Exclusive => answers must
  /// differ. Following the paper's Figure-3 construction the inputs range
  /// over *edges*, i.e. uniform over ordered pairs of distinct vertices;
  /// pass include_diagonal = true to also referee equal inputs (same task
  /// type => co-locate), which weakens the advantage (the diagonal rewards
  /// globally aligned classical strategies).
  [[nodiscard]] static XorGame from_affinity(const AffinityGraph& g,
                                             bool include_diagonal = false);

  /// CHSH as an XOR game (optionally the flipped LB variant).
  [[nodiscard]] static XorGame chsh(bool flipped = false);

  [[nodiscard]] std::size_t num_x() const { return f_.size(); }
  [[nodiscard]] std::size_t num_y() const { return f_.front().size(); }
  [[nodiscard]] int f(std::size_t x, std::size_t y) const { return f_[x][y]; }
  [[nodiscard]] double input_prob(std::size_t x, std::size_t y) const {
    return pi_[x][y];
  }

  /// Cost matrix M_xy = pi(x,y) * (-1)^{f(x,y)}; both values below are
  /// biases with respect to it: bias = sum_xy M_xy E(x, y), win probability
  /// = (1 + bias) / 2.
  [[nodiscard]] std::vector<std::vector<double>> cost_matrix() const;

  /// Exact classical bias: max over +-1 assignments a_x, b_y of
  /// sum M_xy a_x b_y. For fixed a the optimal b is a sign readout, so the
  /// search is 2^{num_x} * num_x * num_y.
  [[nodiscard]] double classical_bias() const;

  /// The witnessing deterministic strategy: output bits per input
  /// (0 maps to sign +1). Shared randomness cannot improve on it.
  struct ClassicalStrategy {
    std::vector<int> alice;  ///< bit for each x
    std::vector<int> bob;    ///< bit for each y
    double bias = 0.0;
  };
  [[nodiscard]] ClassicalStrategy classical_strategy() const;

  /// Quantum bias via the Tsirelson SDP.
  [[nodiscard]] sdp::XorBiasResult quantum_bias(
      const sdp::GramOptions& opts = {}) const;

  [[nodiscard]] double classical_value() const {
    return (1.0 + classical_bias()) / 2.0;
  }

  /// True iff the quantum bias exceeds the classical one by more than tol.
  [[nodiscard]] bool has_quantum_advantage(double tol = 1e-5,
                                           const sdp::GramOptions& opts = {}) const;

  /// View as a general TwoPartyGame (binary outputs).
  [[nodiscard]] TwoPartyGame to_two_party_game() const;

 private:
  std::vector<std::vector<int>> f_;
  std::vector<std::vector<double>> pi_;
};

}  // namespace ftl::games

#include "ecmp/strategies.hpp"

#include <algorithm>
#include <cmath>

#include "qcore/density.hpp"
#include "qcore/gates.hpp"
#include "qcore/state.hpp"
#include "util/assert.hpp"

namespace ftl::ecmp {

IndependentUniform::IndependentUniform(std::size_t n, std::size_t m)
    : n_(n), m_(m) {
  FTL_ASSERT(n >= 2 && m >= 2);
}

void IndependentUniform::choose(std::vector<std::size_t>& out,
                                util::Rng& rng) {
  out.resize(n_);
  for (auto& p : out) p = rng.uniform_int(m_);
}

SharedPartition::SharedPartition(std::size_t n, std::size_t m)
    : n_(n), m_(m) {
  FTL_ASSERT(n >= 2 && m >= 2);
  // Balanced path labels: sizes differ by at most one.
  assignment_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) assignment_.push_back(i % m);
}

void SharedPartition::choose(std::vector<std::size_t>& out, util::Rng& rng) {
  // The shared random seed re-shuffles which switch lands in which group
  // every round; group sizes stay balanced.
  rng.shuffle(assignment_);
  out = assignment_;
}

double SharedPartition::pair_collision_probability(std::size_t n,
                                                   std::size_t m) {
  FTL_ASSERT(n >= 2 && m >= 1);
  const std::size_t q = n / m;
  const std::size_t r = n % m;
  // r groups of size q+1, (m - r) groups of size q.
  const double same =
      static_cast<double>(r) * static_cast<double>((q + 1) * q) +
      static_cast<double>(m - r) * static_cast<double>(q * (q - 1));
  return same / static_cast<double>(n * (n - 1));
}

GhzAngles::GhzAngles(std::vector<double> angles) : angles_(std::move(angles)) {
  FTL_ASSERT_MSG(angles_.size() >= 2 && angles_.size() <= 12,
                 "GHZ strategy sized for 2..12 switches");
}

void GhzAngles::choose(std::vector<std::size_t>& out, util::Rng& rng) {
  const std::size_t n = angles_.size();
  out.resize(n);
  qcore::StateVec psi = qcore::StateVec::ghz(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::size_t>(
        psi.measure(i, qcore::gates::real_basis(angles_[i]), rng));
  }
}

double GhzAngles::pair_collision_probability(std::size_t i,
                                             std::size_t j) const {
  FTL_ASSERT(i < angles_.size() && j < angles_.size() && i != j);
  // Exact Born computation: P(same) = sum_o P(i -> o) P(j -> o | i -> o),
  // evaluated by deterministic density-matrix collapse.
  const qcore::CMat bi = qcore::gates::real_basis(angles_[i]);
  const qcore::CMat bj = qcore::gates::real_basis(angles_[j]);
  const qcore::Density rho =
      qcore::Density::from_state(qcore::StateVec::ghz(angles_.size()));
  double p_same = 0.0;
  for (int o = 0; o < 2; ++o) {
    const double p_i = rho.outcome_probability(i, bi, o);
    if (p_i <= 1e-15) continue;
    const auto [after, p_check] = rho.collapse(i, bi, o);
    (void)p_check;
    p_same += p_i * after.outcome_probability(j, bj, o);
  }
  return p_same;
}

double GhzAngles::mean_pair_collision() const {
  const std::size_t n = angles_.size();
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      total += pair_collision_probability(i, j);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

WAngles::WAngles(std::vector<double> angles) : angles_(std::move(angles)) {
  FTL_ASSERT_MSG(angles_.size() >= 2 && angles_.size() <= 12,
                 "W strategy sized for 2..12 switches");
}

qcore::StateVec WAngles::w_state(std::size_t n) {
  FTL_ASSERT(n >= 2);
  std::vector<qcore::Cx> amps(std::size_t{1} << n, qcore::Cx{0, 0});
  const double r = 1.0 / std::sqrt(static_cast<double>(n));
  for (std::size_t k = 0; k < n; ++k) {
    amps[std::size_t{1} << k] = qcore::Cx{r, 0};
  }
  return qcore::StateVec::from_amplitudes(std::move(amps));
}

void WAngles::choose(std::vector<std::size_t>& out, util::Rng& rng) {
  const std::size_t n = angles_.size();
  out.resize(n);
  qcore::StateVec psi = w_state(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::size_t>(
        psi.measure(i, qcore::gates::real_basis(angles_[i]), rng));
  }
}

double WAngles::pair_collision_probability(std::size_t i,
                                           std::size_t j) const {
  FTL_ASSERT(i < angles_.size() && j < angles_.size() && i != j);
  const qcore::CMat bi = qcore::gates::real_basis(angles_[i]);
  const qcore::CMat bj = qcore::gates::real_basis(angles_[j]);
  const qcore::Density rho =
      qcore::Density::from_state(w_state(angles_.size()));
  double p_same = 0.0;
  for (int o = 0; o < 2; ++o) {
    const double p_i = rho.outcome_probability(i, bi, o);
    if (p_i <= 1e-15) continue;
    const auto [after, p_check] = rho.collapse(i, bi, o);
    (void)p_check;
    p_same += p_i * after.outcome_probability(j, bj, o);
  }
  return p_same;
}

double WAngles::mean_pair_collision() const {
  const std::size_t n = angles_.size();
  double total = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      total += pair_collision_probability(i, j);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

namespace {

/// Exhausts all grid^n angle assignments against a pairwise collision
/// table (valid because both GHZ and W reduced pair states are identical
/// across pairs by symmetry).
double min_mean_collision(const std::vector<std::vector<double>>& table,
                          std::size_t n, std::size_t grid_points) {
  double best = 1.0;
  std::vector<std::size_t> idx(n, 0);
  const double num_pairs = static_cast<double>(n * (n - 1) / 2);
  for (;;) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) total += table[idx[i]][idx[j]];
    }
    best = std::min(best, total / num_pairs);
    std::size_t k = 0;
    while (k < n && ++idx[k] == grid_points) {
      idx[k] = 0;
      ++k;
    }
    if (k == n) break;
  }
  return best;
}

}  // namespace

double grid_search_w_min_collision(std::size_t n, std::size_t grid_points) {
  FTL_ASSERT(n >= 3 && n <= 6);
  FTL_ASSERT(grid_points >= 2 && grid_points <= 64);
  std::vector<double> grid(grid_points);
  for (std::size_t g = 0; g < grid_points; ++g) {
    grid[g] = M_PI * static_cast<double>(g) / static_cast<double>(grid_points);
  }
  std::vector<std::vector<double>> table(grid_points,
                                         std::vector<double>(grid_points));
  for (std::size_t a = 0; a < grid_points; ++a) {
    for (std::size_t b = 0; b < grid_points; ++b) {
      std::vector<double> probe_angles(n, 0.0);
      probe_angles[0] = grid[a];
      probe_angles[1] = grid[b];
      WAngles probe(probe_angles);
      table[a][b] = probe.pair_collision_probability(0, 1);
    }
  }
  return min_mean_collision(table, n, grid_points);
}

PairedSinglets::PairedSinglets(std::size_t n) : n_(n) { FTL_ASSERT(n >= 2); }

void PairedSinglets::choose(std::vector<std::size_t>& out, util::Rng& rng) {
  out.resize(n_);
  // A singlet measured in the same basis at both ends yields perfectly
  // anti-correlated uniform bits; pairs are independent of each other.
  // Sampling those bits directly is distribution-identical (the unit tests
  // verify this against the state-vector simulator).
  std::size_t i = 0;
  for (; i + 1 < n_; i += 2) {
    const std::size_t r = rng.bernoulli(0.5) ? 1 : 0;
    out[i] = r;
    out[i + 1] = 1 - r;
  }
  if (i < n_) out[i] = rng.uniform_int(2);
}

double grid_search_ghz_min_collision(std::size_t n, std::size_t grid_points) {
  FTL_ASSERT(n >= 3 && n <= 6);
  FTL_ASSERT(grid_points >= 2 && grid_points <= 64);
  // For GHZ(n >= 3) the reduced state of every pair is identical, so the
  // pairwise collision probability is a function of the two angles only;
  // precompute it on the grid.
  std::vector<double> grid(grid_points);
  for (std::size_t g = 0; g < grid_points; ++g) {
    grid[g] = M_PI * static_cast<double>(g) / static_cast<double>(grid_points);
  }
  std::vector<std::vector<double>> table(grid_points,
                                         std::vector<double>(grid_points));
  for (std::size_t a = 0; a < grid_points; ++a) {
    for (std::size_t b = 0; b < grid_points; ++b) {
      GhzAngles probe({grid[a], grid[b], 0.0});
      table[a][b] = probe.pair_collision_probability(0, 1);
    }
  }
  return min_mean_collision(table, n, grid_points);
}

}  // namespace ftl::ecmp

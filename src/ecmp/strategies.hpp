// ECMP path-selection strategies (§4.2).
//
// N switches share M < N equal-cost paths. Each round an unknown subset of
// switches is active; every switch must pick a path with no knowledge of
// who else is active and no communication. Strategies may pre-share
// randomness (classical) or entanglement (quantum). Collisions are active
// switches choosing the same path.
//
// The paper proves that entangling *inactive* switches cannot help (the
// no-signaling reduction, see no_signaling.hpp) and conjectures no quantum
// advantage at all; the strategies here let the benches probe that
// conjecture empirically for small N.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "qcore/state.hpp"
#include "util/rng.hpp"

namespace ftl::ecmp {

class EcmpStrategy {
 public:
  virtual ~EcmpStrategy() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::size_t num_switches() const = 0;
  [[nodiscard]] virtual std::size_t num_paths() const = 0;

  /// One round: every switch (active or not — nobody knows) commits to a
  /// path. `out[i]` is switch i's path.
  virtual void choose(std::vector<std::size_t>& out, util::Rng& rng) = 0;
};

/// Every switch picks an independent uniform path (classical baseline;
/// per-pair collision probability 1/M).
class IndependentUniform final : public EcmpStrategy {
 public:
  IndependentUniform(std::size_t n, std::size_t m);
  [[nodiscard]] std::string name() const override { return "independent"; }
  [[nodiscard]] std::size_t num_switches() const override { return n_; }
  [[nodiscard]] std::size_t num_paths() const override { return m_; }
  void choose(std::vector<std::size_t>& out, util::Rng& rng) override;

 private:
  std::size_t n_;
  std::size_t m_;
};

/// Optimal classical shared-randomness scheme: a fresh random balanced
/// partition of switches into the M paths each round. For a uniformly
/// random active pair the collision probability is
/// sum_g g_i(g_i - 1) / (N(N-1)) — e.g. 1/3 for N=4, M=2.
class SharedPartition final : public EcmpStrategy {
 public:
  SharedPartition(std::size_t n, std::size_t m);
  [[nodiscard]] std::string name() const override { return "shared-partition"; }
  [[nodiscard]] std::size_t num_switches() const override { return n_; }
  [[nodiscard]] std::size_t num_paths() const override { return m_; }
  void choose(std::vector<std::size_t>& out, util::Rng& rng) override;

  /// Closed-form per-random-pair collision probability of the balanced
  /// partition.
  [[nodiscard]] static double pair_collision_probability(std::size_t n,
                                                         std::size_t m);

 private:
  std::size_t n_;
  std::size_t m_;
  std::vector<std::size_t> assignment_;
};

/// N-way GHZ entanglement, each switch measuring its qubit in a fixed real
/// basis angle (M = 2 paths; binary outcomes). Because the two-qubit
/// reduced state of a GHZ(n >= 3) is the classical mixture
/// (|00><00| + |11><11|)/2, this cannot beat the classical partition — the
/// bench verifies exactly that via grid search over angles.
class GhzAngles final : public EcmpStrategy {
 public:
  GhzAngles(std::vector<double> angles);
  [[nodiscard]] std::string name() const override { return "ghz-angles"; }
  [[nodiscard]] std::size_t num_switches() const override {
    return angles_.size();
  }
  [[nodiscard]] std::size_t num_paths() const override { return 2; }
  void choose(std::vector<std::size_t>& out, util::Rng& rng) override;

  /// Exact P(switch i and switch j output the same bit).
  [[nodiscard]] double pair_collision_probability(std::size_t i,
                                                  std::size_t j) const;

  /// Average of pair_collision_probability over all unordered pairs — the
  /// collision rate seen by a uniformly random active pair.
  [[nodiscard]] double mean_pair_collision() const;

 private:
  std::vector<double> angles_;
};

/// N-way W-state entanglement, each switch measuring a fixed real angle
/// (M = 2). Unlike GHZ, the W state's two-qubit reduced states are
/// *entangled* (concurrence 2/n), so this probes the paper's §4.2
/// conjecture with a genuinely non-classical pairwise resource — the
/// bench shows it still cannot beat the classical partition.
class WAngles final : public EcmpStrategy {
 public:
  explicit WAngles(std::vector<double> angles);
  [[nodiscard]] std::string name() const override { return "w-angles"; }
  [[nodiscard]] std::size_t num_switches() const override {
    return angles_.size();
  }
  [[nodiscard]] std::size_t num_paths() const override { return 2; }
  void choose(std::vector<std::size_t>& out, util::Rng& rng) override;

  /// Exact P(switch i and switch j output the same bit).
  [[nodiscard]] double pair_collision_probability(std::size_t i,
                                                  std::size_t j) const;
  [[nodiscard]] double mean_pair_collision() const;

  /// The W state (|10...0> + |01...0> + ... + |0...01>)/sqrt(n).
  [[nodiscard]] static qcore::StateVec w_state(std::size_t n);

 private:
  std::vector<double> angles_;
};

/// Grid search over W-state measurement angles (analogue of the GHZ one).
[[nodiscard]] double grid_search_w_min_collision(std::size_t n,
                                                 std::size_t grid_points);

/// Switches are pre-paired; each pair shares a singlet measured in the same
/// basis, producing perfectly anti-correlated path bits (M = 2). Across
/// pairs, outcomes are independent. This is the strongest pairwise-
/// entanglement scheme for M = 2 and it exactly matches (not beats) the
/// classical partition — monogamy of entanglement prevents more.
class PairedSinglets final : public EcmpStrategy {
 public:
  explicit PairedSinglets(std::size_t n);
  [[nodiscard]] std::string name() const override { return "paired-singlets"; }
  [[nodiscard]] std::size_t num_switches() const override { return n_; }
  [[nodiscard]] std::size_t num_paths() const override { return 2; }
  void choose(std::vector<std::size_t>& out, util::Rng& rng) override;

 private:
  std::size_t n_;
};

/// Exhaustive grid search over GHZ measurement angles minimising the mean
/// pair collision probability; returns the best value found (the bench
/// compares it against the classical optimum).
[[nodiscard]] double grid_search_ghz_min_collision(std::size_t n,
                                                   std::size_t grid_points);

}  // namespace ftl::ecmp

#include "ecmp/no_signaling.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace ftl::ecmp {

std::vector<std::vector<double>> joint_ab(const qcore::Density& rho,
                                          std::size_t qubit_a,
                                          const qcore::CMat& basis_a,
                                          std::size_t qubit_b,
                                          const qcore::CMat& basis_b) {
  std::vector<std::vector<double>> p(2, std::vector<double>(2, 0.0));
  for (int oa = 0; oa < 2; ++oa) {
    const double pa = rho.outcome_probability(qubit_a, basis_a, oa);
    if (pa <= 1e-15) continue;
    const auto [after, prob] = rho.collapse(qubit_a, basis_a, oa);
    (void)prob;
    for (int ob = 0; ob < 2; ++ob) {
      p[oa][ob] = pa * after.outcome_probability(qubit_b, basis_b, ob);
    }
  }
  return p;
}

std::vector<std::vector<double>> joint_ab_after_c(
    const qcore::Density& rho, std::size_t qubit_a, const qcore::CMat& basis_a,
    std::size_t qubit_b, const qcore::CMat& basis_b, std::size_t qubit_c,
    const qcore::CMat& basis_c) {
  std::vector<std::vector<double>> p(2, std::vector<double>(2, 0.0));
  for (int oc = 0; oc < 2; ++oc) {
    const double pc = rho.outcome_probability(qubit_c, basis_c, oc);
    if (pc <= 1e-15) continue;
    const auto [after_c, prob] = rho.collapse(qubit_c, basis_c, oc);
    (void)prob;
    const auto joint = joint_ab(after_c, qubit_a, basis_a, qubit_b, basis_b);
    for (int oa = 0; oa < 2; ++oa) {
      for (int ob = 0; ob < 2; ++ob) p[oa][ob] += pc * joint[oa][ob];
    }
  }
  return p;
}

double no_signaling_deviation(const qcore::Density& rho, std::size_t qubit_a,
                              const qcore::CMat& basis_a, std::size_t qubit_b,
                              const qcore::CMat& basis_b, std::size_t qubit_c,
                              const qcore::CMat& basis_c) {
  const auto direct = joint_ab(rho, qubit_a, basis_a, qubit_b, basis_b);
  const auto via_c = joint_ab_after_c(rho, qubit_a, basis_a, qubit_b, basis_b,
                                      qubit_c, basis_c);
  double dev = 0.0;
  for (int oa = 0; oa < 2; ++oa) {
    for (int ob = 0; ob < 2; ++ob) {
      dev = std::max(dev, std::abs(direct[oa][ob] - via_c[oa][ob]));
    }
  }
  return dev;
}

std::vector<std::pair<double, qcore::Density>> reduce_by_measuring(
    const qcore::Density& rho, std::size_t qubit_c,
    const qcore::CMat& basis_c) {
  std::vector<std::pair<double, qcore::Density>> ensemble;
  for (int oc = 0; oc < 2; ++oc) {
    const double pc = rho.outcome_probability(qubit_c, basis_c, oc);
    if (pc <= 1e-15) continue;
    auto [after, prob] = rho.collapse(qubit_c, basis_c, oc);
    (void)prob;
    ensemble.emplace_back(pc, after.partial_trace({qubit_c}));
  }
  return ensemble;
}

}  // namespace ftl::ecmp

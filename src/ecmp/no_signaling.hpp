// The §4.2 no-signaling reduction, executable.
//
// Claim: if switch C is spacelike-separated from A and B, then A and B's
// joint outcome distribution cannot depend on anything C does; hence C may
// as well measure first, which collapses any tripartite entangled state
// into a classical mixture of *pairwise* states between A and B. Thus
// N-way entanglement buys nothing beyond M-way when only M switches'
// outcomes matter.
//
// These functions state the reduction numerically so the test suite and the
// bench can verify it on arbitrary states and bases.
#pragma once

#include <vector>

#include "qcore/density.hpp"

namespace ftl::ecmp {

/// Joint distribution of measuring qubits a and b of `rho` in the given
/// bases: entry [oa][ob].
[[nodiscard]] std::vector<std::vector<double>> joint_ab(
    const qcore::Density& rho, std::size_t qubit_a, const qcore::CMat& basis_a,
    std::size_t qubit_b, const qcore::CMat& basis_b);

/// Same joint, computed the "C measures first" way: C (qubit_c) measures in
/// basis_c, and the A/B joint is averaged over C's outcomes. By
/// no-signaling this must equal joint_ab for every basis_c.
[[nodiscard]] std::vector<std::vector<double>> joint_ab_after_c(
    const qcore::Density& rho, std::size_t qubit_a, const qcore::CMat& basis_a,
    std::size_t qubit_b, const qcore::CMat& basis_b, std::size_t qubit_c,
    const qcore::CMat& basis_c);

/// Max absolute difference between the two computations over all outcome
/// pairs — zero (to numerical precision) for every physical state/basis.
[[nodiscard]] double no_signaling_deviation(
    const qcore::Density& rho, std::size_t qubit_a, const qcore::CMat& basis_a,
    std::size_t qubit_b, const qcore::CMat& basis_b, std::size_t qubit_c,
    const qcore::CMat& basis_c);

/// The reduction constructively: C measures in `basis_c`; returns the
/// ensemble {(probability, pairwise state of the remaining qubits)} that
/// replaces the tripartite state. Any protocol using the tripartite state
/// can instead pre-sample from this ensemble — i.e. use only pairwise
/// entanglement plus shared randomness.
[[nodiscard]] std::vector<std::pair<double, qcore::Density>>
reduce_by_measuring(const qcore::Density& rho, std::size_t qubit_c,
                    const qcore::CMat& basis_c);

}  // namespace ftl::ecmp

#include "ecmp/simulator.hpp"

#include <algorithm>
#include <vector>

#include "util/assert.hpp"

namespace ftl::ecmp {

EcmpResult run_ecmp_sim(const EcmpConfig& cfg, EcmpStrategy& strategy) {
  const std::size_t n = strategy.num_switches();
  const std::size_t m = strategy.num_paths();
  FTL_ASSERT(cfg.active >= 2 && cfg.active <= n);
  FTL_ASSERT(cfg.rounds > 0);

  util::Rng rng(cfg.seed);
  util::Rng subset_rng = rng.split(1);

  std::vector<std::size_t> paths;
  std::vector<std::size_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = i;
  std::vector<std::size_t> path_count(m, 0);

  double collisions_total = 0.0;
  std::size_t collision_free = 0;
  double spread_total = 0.0;
  const double spread_denom =
      static_cast<double>(std::min(cfg.active, m));

  for (std::size_t round = 0; round < cfg.rounds; ++round) {
    strategy.choose(paths, rng);
    FTL_ASSERT(paths.size() == n);

    // Uniformly random active subset of size K (partial Fisher-Yates).
    for (std::size_t i = 0; i < cfg.active; ++i) {
      const std::size_t j =
          i + subset_rng.uniform_int(n - i);
      std::swap(ids[i], ids[j]);
    }

    std::fill(path_count.begin(), path_count.end(), 0);
    for (std::size_t i = 0; i < cfg.active; ++i) {
      FTL_ASSERT(paths[ids[i]] < m);
      ++path_count[paths[ids[i]]];
    }
    std::size_t colliding_pairs = 0;
    std::size_t distinct = 0;
    for (std::size_t c : path_count) {
      if (c > 0) ++distinct;
      colliding_pairs += c * (c - 1) / 2;
    }
    collisions_total += static_cast<double>(colliding_pairs);
    if (colliding_pairs == 0) ++collision_free;
    spread_total += static_cast<double>(distinct) / spread_denom;
  }

  EcmpResult out;
  const auto rounds = static_cast<double>(cfg.rounds);
  out.mean_collisions = collisions_total / rounds;
  out.p_collision_free = static_cast<double>(collision_free) / rounds;
  out.path_spread = spread_total / rounds;
  return out;
}

}  // namespace ftl::ecmp

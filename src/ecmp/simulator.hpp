// Monte-Carlo ECMP collision study (§4.2).
//
// Each round: all N switches commit to paths (via a strategy), then a
// uniformly random subset of K switches turns out to be active. Collisions
// are counted among active switches only — the inactive majority is why
// the paper's no-signaling argument bites.
#pragma once

#include <cstdint>

#include "ecmp/strategies.hpp"

namespace ftl::ecmp {

struct EcmpConfig {
  /// Active switches per round (K <= M for the contention-free ideal).
  std::size_t active = 2;
  std::size_t rounds = 100000;
  std::uint64_t seed = 7;
};

struct EcmpResult {
  /// Mean number of colliding pairs among active switches per round.
  double mean_collisions = 0.0;
  /// Fraction of rounds with zero collisions.
  double p_collision_free = 0.0;
  /// Mean number of distinct paths used by active switches, divided by
  /// min(K, M) — 1.0 means perfectly spread.
  double path_spread = 0.0;
};

[[nodiscard]] EcmpResult run_ecmp_sim(const EcmpConfig& cfg,
                                      EcmpStrategy& strategy);

}  // namespace ftl::ecmp

#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace ftl::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  FTL_ASSERT(hi > lo);
  FTL_ASSERT(bins > 0);
}

Histogram Histogram::from_counts(double lo, double hi,
                                 std::vector<std::size_t> counts,
                                 std::size_t underflow, std::size_t overflow) {
  FTL_ASSERT(!counts.empty());
  Histogram h(lo, hi, counts.size());
  h.counts_ = std::move(counts);
  for (const std::size_t c : h.counts_) h.total_ += c;
  h.underflow_ = underflow;
  h.overflow_ = overflow;
  return h;
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    ++counts_.front();
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    ++counts_.back();
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double Histogram::quantile(double q) const {
  FTL_ASSERT(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const auto target = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::size_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= target) return 0.5 * (bin_lo(i) + bin_hi(i));
  }
  return hi_;
}

std::string Histogram::ascii(std::size_t max_width) const {
  const std::size_t peak = counts_.empty()
                               ? 0
                               : *std::max_element(counts_.begin(), counts_.end());
  std::string out;
  char buf[96];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[i] * max_width / peak;
    std::snprintf(buf, sizeof buf, "[%8.3f, %8.3f) %8zu ", bin_lo(i),
                  bin_hi(i), counts_[i]);
    out += buf;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace ftl::util

#include "util/rng.hpp"

#include <cmath>

namespace ftl::util {

double Rng::exponential(double lambda) {
  FTL_ASSERT(lambda > 0.0);
  // -log(1 - U) with U in [0,1) avoids log(0).
  return -std::log1p(-uniform()) / lambda;
}

double Rng::normal() {
  // Marsaglia polar method; discards the second variate for simplicity.
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

std::uint64_t Rng::poisson(double mean) {
  FTL_ASSERT(mean >= 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion, numerically safe for small means.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // For large means, split recursively: Poisson(m) = Poisson(m/2) +
  // Poisson(m - m/2). Depth is logarithmic; each leaf uses inversion.
  const double half = mean / 2.0;
  return poisson(half) + poisson(mean - half);
}

std::pair<std::size_t, std::size_t> Rng::distinct_pair(std::size_t n) {
  FTL_ASSERT(n >= 2);
  const std::size_t a = uniform_int(n);
  std::size_t b = uniform_int(n - 1);
  if (b >= a) ++b;
  return {a, b};
}

}  // namespace ftl::util

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace ftl::util {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const { return n_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::sem() const {
  return n_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

double Accumulator::ci95_halfwidth() const { return 1.96 * sem(); }

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double percentile(std::vector<double> xs, double q) {
  FTL_ASSERT(!xs.empty());
  FTL_ASSERT(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double mean_of(const std::vector<double>& xs) {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  return acc.mean();
}

double wilson_halfwidth(std::size_t successes, std::size_t trials) {
  if (trials == 0) return 0.0;
  const double z = 1.96;
  const auto n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  return (z / (1.0 + z2 / n)) *
         std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
}

}  // namespace ftl::util

#include "util/args.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/assert.hpp"

namespace ftl::util {

std::optional<double> parse_double(std::string_view token) {
  if (token.empty()) return std::nullopt;
  const std::string s(token);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  // The whole token must be consumed: "1e5x" and "bogus" are errors, not
  // truncations. Overflow to +-inf is rejected too (errno == ERANGE with an
  // infinite result); gradual underflow to a denormal/zero is accepted.
  if (end == s.c_str() || *end != '\0') return std::nullopt;
  if (errno == ERANGE && std::isinf(v)) return std::nullopt;
  return v;
}

std::optional<long long> parse_long_long(std::string_view token) {
  if (token.empty()) return std::nullopt;
  const std::string s(token);
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') return std::nullopt;
  if (errno == ERANGE) return std::nullopt;  // silently saturating is worse
  return v;
}

namespace {

/// Aborts with a message naming the flag and the offending token; flag
/// typos and malformed values must fail loudly, never parse as 0.
[[noreturn]] void bad_flag_value(const std::string& name,
                                 const std::string& value, const char* want) {
  std::fprintf(stderr, "ftl: invalid value for flag --%s: '%s' (want %s)\n",
               name.c_str(), value.c_str(), want);
  std::abort();
}

}  // namespace

bool is_value_token(std::string_view token) {
  if (token.empty() || token[0] != '-') return true;
  if (token.size() == 1) return true;  // bare "-" (stdin convention)
  // A dash token is a value only if it parses as a complete number.
  const std::string s(token);
  char* end = nullptr;
  (void)std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0';
}

Args::Args(int argc, const char* const* argv, bool allow_unknown) {
  (void)allow_unknown;  // reserved; all flags are currently accepted
  FTL_ASSERT(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    FTL_ASSERT_MSG(!body.empty(), "bare '--' is not a valid flag");
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` if the next token exists and is not itself a flag
    // (negative numbers count as values); otherwise a boolean `--name`.
    if (i + 1 < argc && is_value_token(argv[i + 1])) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "";
    }
  }
}

bool Args::has(const std::string& name) const {
  return flags_.find(name) != flags_.end();
}

std::string Args::get(const std::string& name,
                      const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

double Args::get(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  const auto v = parse_double(it->second);
  if (!v) bad_flag_value(name, it->second, "a number");
  return *v;
}

long long Args::get(const std::string& name, long long fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  const auto v = parse_long_long(it->second);
  if (!v) bad_flag_value(name, it->second, "an in-range integer");
  return *v;
}

std::size_t Args::get(const std::string& name, std::size_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  const auto v = parse_long_long(it->second);
  if (!v) bad_flag_value(name, it->second, "an in-range integer");
  // `--servers -5` must not wrap to ~1.8e19 and attempt a huge allocation.
  if (*v < 0) bad_flag_value(name, it->second, "a non-negative integer");
  return static_cast<std::size_t>(*v);
}

bool Args::get(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  return false;
}

}  // namespace ftl::util

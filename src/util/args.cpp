#include "util/args.hpp"

#include <cstdlib>

#include "util/assert.hpp"

namespace ftl::util {

bool is_value_token(std::string_view token) {
  if (token.empty() || token[0] != '-') return true;
  if (token.size() == 1) return true;  // bare "-" (stdin convention)
  // A dash token is a value only if it parses as a complete number.
  const std::string s(token);
  char* end = nullptr;
  (void)std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0';
}

Args::Args(int argc, const char* const* argv, bool allow_unknown) {
  (void)allow_unknown;  // reserved; all flags are currently accepted
  FTL_ASSERT(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    FTL_ASSERT_MSG(!body.empty(), "bare '--' is not a valid flag");
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` if the next token exists and is not itself a flag
    // (negative numbers count as values); otherwise a boolean `--name`.
    if (i + 1 < argc && is_value_token(argv[i + 1])) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "";
    }
  }
}

bool Args::has(const std::string& name) const {
  return flags_.find(name) != flags_.end();
}

std::string Args::get(const std::string& name,
                      const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

double Args::get(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

long long Args::get(const std::string& name, long long fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

std::size_t Args::get(const std::string& name, std::size_t fallback) const {
  const long long v = get(name, static_cast<long long>(fallback));
  FTL_ASSERT_MSG(v >= 0, "flag value must be non-negative");
  return static_cast<std::size_t>(v);
}

bool Args::get(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  return false;
}

}  // namespace ftl::util

// Deterministic, seedable random number generation.
//
// Every stochastic component in the library takes an explicit Rng&. This
// gives three properties the experiments need:
//   1. reproducibility — each figure can be regenerated bit-for-bit,
//   2. independence — separate subsystems (arrival process, measurement
//      sampling, strategy randomness) can use decorrelated streams derived
//      from one master seed via split(),
//   3. speed — xoshiro256++ is much faster than std::mt19937_64 and has no
//      allocation.
//
// The implementation is xoshiro256++ (Blackman & Vigna) seeded through
// splitmix64, the combination recommended by the authors.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/assert.hpp"

namespace ftl::util {

/// splitmix64 step; used for seeding and for hashing seeds together.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ PRNG. Satisfies UniformRandomBitGenerator so it can be used
/// with <random> distributions, though the members below are preferred.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64() {
    const std::uint64_t result =
        rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Uses Lemire's nearly-divisionless method.
  std::uint64_t uniform_int(std::uint64_t n) {
    FTL_ASSERT(n > 0);
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    FTL_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    uniform_int(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Exponential with rate lambda (mean 1/lambda).
  double exponential(double lambda);

  /// Poisson-distributed count with the given mean (inversion for small
  /// means, normal-approximation-free PTRD-style rejection for large).
  std::uint64_t poisson(double mean);

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Picks two *distinct* indices uniformly from [0, n), n >= 2.
  std::pair<std::size_t, std::size_t> distinct_pair(std::size_t n);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform_int(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child stream; deterministic in (parent state
  /// consumed, label). Useful to give each subsystem its own stream.
  Rng split(std::uint64_t label = 0) {
    std::uint64_t s = next_u64() ^ (0x9e3779b97f4a7c15ULL * (label + 1));
    return Rng{splitmix64(s)};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace ftl::util

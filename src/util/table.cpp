#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/assert.hpp"

namespace ftl::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  FTL_ASSERT(!headers_.empty());
}

void Table::add_row(std::vector<Cell> cells) {
  FTL_ASSERT_MSG(cells.size() == headers_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::render_cell(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<long long>(&c)) return std::to_string(*i);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision_,
                std::get<double>(c));
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      r.push_back(render_cell(row[i]));
      widths[i] = std::max(widths[i], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << (i == 0 ? "| " : " | ");
      os << cells[i];
      os << std::string(widths[i] - cells[i].size(), ' ');
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (std::size_t w : widths) os << std::string(w + 2, '-') << '|';
  os << '\n';
  for (const auto& r : rendered) print_row(r);
}

void Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  FTL_ASSERT_MSG(f.good(), "could not open CSV output file");
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    f << headers_[i] << (i + 1 < headers_.size() ? "," : "\n");
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      f << render_cell(row[i]) << (i + 1 < row.size() ? "," : "\n");
    }
  }
}

}  // namespace ftl::util

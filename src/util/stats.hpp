// Streaming and batch statistics used by every experiment harness.
#pragma once

#include <cstddef>
#include <vector>

namespace ftl::util {

/// Numerically stable streaming mean/variance (Welford's algorithm).
class Accumulator {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean.
  [[nodiscard]] double sem() const;
  /// Half-width of an approximate 95% confidence interval (1.96 * sem).
  [[nodiscard]] double ci95_halfwidth() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double sum() const { return mean() * static_cast<double>(n_); }

  /// Merges another accumulator (parallel Welford combination).
  void merge(const Accumulator& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linearly-interpolated percentile of a sample (q in [0,1]). Sorts a copy.
[[nodiscard]] double percentile(std::vector<double> xs, double q);

/// Sample mean of a vector (0 for empty input).
[[nodiscard]] double mean_of(const std::vector<double>& xs);

/// Wilson score interval half-width for a binomial proportion at 95%.
[[nodiscard]] double wilson_halfwidth(std::size_t successes, std::size_t trials);

}  // namespace ftl::util

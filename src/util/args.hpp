// Minimal command-line flag parser for the example binaries.
//
// Supports `--name value`, `--name=value`, `--flag` (boolean), and bare
// positional arguments, with typed accessors and defaults. Unknown flags
// are an error so typos fail loudly; `--help` support is left to callers
// (usage() renders the registered flags).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ftl::util {

/// Strict full-token numeric parses: the *entire* token must be a valid
/// number ("1e5x", "bogus", "" and out-of-range values all return nullopt).
/// Args::get uses these and aborts loudly on garbage — a mistyped
/// `--rate bogus` must never silently become 0.0.
[[nodiscard]] std::optional<double> parse_double(std::string_view token);
[[nodiscard]] std::optional<long long> parse_long_long(std::string_view token);

/// True when `token` can serve as the space-separated value of a preceding
/// flag: anything not beginning with '-', the bare "-" (stdin convention),
/// and numeric tokens such as "-5", "-0.25", or "-1e-3". Dash tokens that
/// are not numbers ("-v", "--flag") are flags in their own right and must
/// not be swallowed as values. Args and the bench argv-stripping loop share
/// this predicate so they always agree on flag/value pairing.
[[nodiscard]] bool is_value_token(std::string_view token);

class Args {
 public:
  /// Parses argv; aborts with a message on malformed input. Register the
  /// allowed flags first via the describe() builder on a default-built
  /// object, or pass allow_unknown = true to accept anything.
  Args(int argc, const char* const* argv, bool allow_unknown = false);

  /// True if `--name` appeared (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Typed accessors with defaults.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] double get(const std::string& name, double fallback) const;
  [[nodiscard]] long long get(const std::string& name,
                              long long fallback) const;
  [[nodiscard]] std::size_t get(const std::string& name,
                                std::size_t fallback) const;
  [[nodiscard]] bool get(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;  // name -> value ("" = bare)
  std::vector<std::string> positional_;
};

}  // namespace ftl::util

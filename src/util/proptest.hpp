// ftl_proptest: a small header-only property-based testing harness.
//
// Every number this reproduction reports rests on physical invariants —
// normalised states, CPTP channels, no-signaling boxes, the classical ≤
// quantum ≤ NPA sandwich. Spot checks at hand-picked points do not protect
// refactors; random inputs do (random XOR games systematically separate the
// classical and quantum values, per Ambainis–Iraids). This harness runs a
// property over `cases` randomly generated inputs with full determinism:
//
//   * every case derives its own seed from (master seed, case index), so a
//     failure is reported with the exact 64-bit seed that regenerates the
//     failing input;
//   * before reporting, the harness *replays* the failing seed and asserts
//     the failure reproduces, so the printed seed is guaranteed to be a
//     working repro (a property that fails only nondeterministically is
//     flagged as such — that is itself a bug worth a different message);
//   * setting FTL_PROPTEST_SEED=<seed> in the environment re-runs exactly
//     that one case in every for_all of the binary, which is the replay
//     workflow documented in README.md;
//   * an optional shrinker (halving/zeroing-style) reduces the failing
//     input before the final report.
//
// The harness is GTest-agnostic: for_all returns a Result; tests write
// `auto r = proptest::for_all(...); ASSERT_TRUE(r.ok) << r.message;`.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "util/rng.hpp"

namespace ftl::proptest {

/// Outcome of one property evaluation; `note` explains a failure.
struct CaseResult {
  bool ok = true;
  std::string note;

  [[nodiscard]] static CaseResult pass() { return {true, ""}; }
  [[nodiscard]] static CaseResult fail(std::string note) {
    return {false, std::move(note)};
  }
};

struct Options {
  /// Suite name, included in failure messages.
  std::string name = "property";
  std::size_t cases = 120;
  /// Master seed; each case i runs on case_seed(seed, i).
  std::uint64_t seed = 0xf71c0de2026ULL;
  /// Upper bound on accepted shrink steps before reporting.
  int max_shrink_steps = 64;
};

struct Result {
  bool ok = true;
  std::size_t cases_run = 0;
  std::string message;

  explicit operator bool() const { return ok; }
};

/// Deterministic per-case seed derivation (matches util::Rng::split's
/// mixing so streams are decorrelated across case indices).
[[nodiscard]] inline std::uint64_t case_seed(std::uint64_t master,
                                             std::uint64_t index) {
  std::uint64_t s = master ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  return util::splitmix64(s);
}

/// Reads FTL_PROPTEST_SEED; true (and sets `out`) when a replay seed is set.
[[nodiscard]] inline bool env_replay_seed(std::uint64_t& out) {
  const char* env = std::getenv("FTL_PROPTEST_SEED");
  if (env == nullptr || *env == '\0') return false;
  out = std::strtoull(env, nullptr, 0);
  return true;
}

/// Recovers the case seed from a failure message (0 if absent). Used by
/// tests that assert the printed seed really replays the failure.
[[nodiscard]] inline std::uint64_t parse_reported_seed(
    const std::string& message) {
  const auto pos = message.find("seed: ");
  if (pos == std::string::npos) return 0;
  return std::strtoull(message.c_str() + pos + 6, nullptr, 10);
}

/// Shrinker that proposes nothing (the default).
struct NoShrink {
  template <typename T>
  std::vector<T> operator()(const T&) const {
    return {};
  }
};

/// Halving/zeroing shrink candidates for a scalar parameter.
[[nodiscard]] inline std::vector<double> shrink_double(double x) {
  std::vector<double> out;
  if (x != 0.0) out.push_back(0.0);
  if (x / 2.0 != x && x / 2.0 != 0.0) out.push_back(x / 2.0);
  return out;
}

/// Halving/zeroing candidates for a vector parameter: all-zeros, all-halved,
/// and each single entry zeroed.
[[nodiscard]] inline std::vector<std::vector<double>> shrink_real_vector(
    const std::vector<double>& v) {
  std::vector<std::vector<double>> out;
  bool any_nonzero = false;
  for (double x : v) any_nonzero |= (x != 0.0);
  if (!any_nonzero) return out;
  out.emplace_back(v.size(), 0.0);
  std::vector<double> halved = v;
  for (double& x : halved) x /= 2.0;
  out.push_back(std::move(halved));
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] == 0.0) continue;
    std::vector<double> one = v;
    one[i] = 0.0;
    out.push_back(std::move(one));
  }
  return out;
}

namespace detail {

/// Adapts bool-returning properties to CaseResult.
template <typename Prop, typename T>
[[nodiscard]] CaseResult eval_property(Prop& prop, const T& value) {
  if constexpr (std::is_same_v<std::invoke_result_t<Prop&, const T&>, bool>) {
    return prop(value) ? CaseResult::pass()
                       : CaseResult::fail("property returned false");
  } else {
    return prop(value);
  }
}

}  // namespace detail

/// Runs `prop` over `opts.cases` inputs drawn from `gen`.
///
/// Gen:    T(util::Rng&)                     — generates one input.
/// Prop:   CaseResult(const T&) or bool(const T&).
/// Shrink: std::vector<T>(const T&)          — smaller candidates to try.
///
/// On failure the Result message carries the case seed, the (possibly
/// shrunk) failure note, a replay command, and the outcome of the
/// harness's own replay of that seed.
template <typename Gen, typename Prop, typename Shrink = NoShrink>
[[nodiscard]] Result for_all(const Options& opts, Gen&& gen, Prop&& prop,
                             Shrink&& shrink = Shrink{}) {
  Result result;
  std::uint64_t forced_seed = 0;
  const bool replaying = env_replay_seed(forced_seed);
  const std::size_t num_cases = replaying ? 1 : opts.cases;

  for (std::size_t i = 0; i < num_cases; ++i) {
    const std::uint64_t seed = replaying ? forced_seed : case_seed(opts.seed, i);
    util::Rng rng(seed);
    auto value = gen(rng);
    CaseResult cr = detail::eval_property(prop, value);
    ++result.cases_run;
    if (cr.ok) continue;

    // Shrink: greedily accept any failing candidate, bounded.
    int shrink_steps = 0;
    bool made_progress = true;
    while (made_progress && shrink_steps < opts.max_shrink_steps) {
      made_progress = false;
      for (auto& candidate : shrink(value)) {
        const CaseResult candidate_result =
            detail::eval_property(prop, candidate);
        if (!candidate_result.ok) {
          value = std::move(candidate);
          cr = candidate_result;
          ++shrink_steps;
          made_progress = true;
          break;
        }
      }
    }

    // Replay the printed seed so the report never lies: regenerating from
    // `seed` must fail again (shrinking never changes the seeded repro).
    util::Rng replay_rng(seed);
    auto replay_value = gen(replay_rng);
    const CaseResult replay_result =
        detail::eval_property(prop, replay_value);

    std::ostringstream msg;
    msg << "[" << opts.name << "] property FAILED at case " << i << "/"
        << num_cases << "\n  seed: " << seed << "\n  note: "
        << (cr.note.empty() ? "(none)" : cr.note) << "\n  shrink steps: "
        << shrink_steps << "\n  seed replay: "
        << (replay_result.ok
                ? "DID NOT REPRODUCE — property is nondeterministic; fix "
                  "the property before trusting this suite"
                : "reproduced (deterministic repro)")
        << "\n  to replay: FTL_PROPTEST_SEED=" << seed
        << " <this test binary>";
    result.ok = false;
    result.message = msg.str();
    return result;
  }

  std::ostringstream msg;
  msg << "[" << opts.name << "] " << result.cases_run << " cases passed";
  result.message = msg.str();
  return result;
}

}  // namespace ftl::proptest

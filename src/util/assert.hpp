// Lightweight always-on assertion used across the library.
//
// We keep assertions enabled in release builds: the simulators in this
// repository are research instruments, and a silently-violated invariant
// (a non-normalised state, a negative queue length) invalidates every number
// downstream. The cost of the checks is negligible next to the simulations
// themselves.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ftl::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "ftl assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace ftl::util

#define FTL_ASSERT(expr)                                                 \
  do {                                                                   \
    if (!(expr)) ::ftl::util::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define FTL_ASSERT_MSG(expr, msg)                                          \
  do {                                                                     \
    if (!(expr)) ::ftl::util::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (false)

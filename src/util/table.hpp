// Plain-text table and CSV emission for benchmark harnesses.
//
// Every figure-reproduction bench prints a human-readable aligned table to
// stdout (captured into bench_output.txt) and can optionally mirror the same
// rows to a CSV file for plotting.
#pragma once

#include <fstream>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace ftl::util {

/// A cell is either text or a number (numbers get fixed formatting).
using Cell = std::variant<std::string, double, long long>;

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<Cell> cells);

  /// Number of decimal places used when printing doubles (default 4).
  void set_precision(int digits) { precision_ = digits; }

  /// Renders an aligned ASCII table.
  void print(std::ostream& os) const;

  /// Writes headers + rows as CSV.
  void write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  [[nodiscard]] std::string render_cell(const Cell& c) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

}  // namespace ftl::util

// Fixed-bin histogram for latency/queue-length distributions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ftl::util {

/// Uniform-bin histogram over [lo, hi); samples outside are clamped into the
/// first/last bin and counted in underflow/overflow tallies.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  /// Rebuilds a histogram from externally accumulated bin counts (e.g. an
  /// obs::Histogram snapshot), so quantile()/ascii() can be reused on data
  /// gathered with atomic bins. `counts` must be non-empty; the edge bins
  /// are assumed to already include the clamped under/overflow samples,
  /// matching add()'s semantics.
  [[nodiscard]] static Histogram from_counts(double lo, double hi,
                                             std::vector<std::size_t> counts,
                                             std::size_t underflow,
                                             std::size_t overflow);

  void add(double x);

  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] const std::vector<std::size_t>& counts() const { return counts_; }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;

  /// Approximate quantile from binned data (midpoint interpolation).
  [[nodiscard]] double quantile(double q) const;

  /// Renders a small ASCII bar chart, useful in example binaries.
  [[nodiscard]] std::string ascii(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace ftl::util

// Propagatable trace context, parented spans, and sliding-window latency
// histograms — the request-scoped layer of the observability subsystem.
//
// Three pieces:
//  * TraceContext is a 64-bit trace id plus the span id of the current
//    (parent) span. It crosses process boundaries on the wire (the
//    ftlcoordd v2 decide frame carries one), so a client batch span and the
//    daemon's per-stage child spans land in different trace files under the
//    same trace id and `ftlbench trace-merge` can join them into one
//    Perfetto timeline. Ids derive deterministically from an RNG-stream
//    label (splitmix64 over seed/stream/index), which is what makes traces
//    reproducible in stepped mode: same seed, same schedule, same ids.
//  * CtxSpan is the parented counterpart of ScopedSpan: it times a scope
//    and records it with trace/span/parent ids in the event's args, so
//    Perfetto groups the stages of one request even across processes.
//  * SlidingHistogram is a thread-safe windowed histogram: observations
//    land in the current time epoch of a small ring, and flush() publishes
//    p50/p95/p99/p999 over the live window as plain gauges
//    (`<name>.window_p50`...), which ride through the existing Prometheus
//    serializer untouched. A scrape therefore sees *recent* latency, not
//    the run-lifetime distribution the cumulative histograms report.
//
// Everything here has a no-op twin under FTL_OBS_ENABLED=OFF with
// identical signatures (asserted empty by obs_noop_test).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace ftl::obs {

/// Wire-propagatable identity of one request's trace. Plain data, shared
/// between the real and no-op configurations (like the snapshot types).
struct TraceContext {
  std::uint64_t trace_id = 0;  ///< 0 = unsampled (no trace)
  std::uint64_t span_id = 0;   ///< the current span; parent of any child

  [[nodiscard]] bool sampled() const noexcept { return trace_id != 0; }

  /// Deterministic derivation from an RNG-stream label: the same
  /// (seed, stream, index) always names the same trace, so stepped-mode
  /// runs produce bit-identical ids. Never returns an unsampled context.
  [[nodiscard]] static TraceContext derive(std::uint64_t seed,
                                           std::uint64_t stream,
                                           std::uint64_t index) noexcept {
    std::uint64_t s = seed;
    s ^= 0x9e3779b97f4a7c15ULL * (stream + 1);
    s ^= 0xbf58476d1ce4e5b9ULL * (index + 1);
    TraceContext ctx;
    ctx.trace_id = util::splitmix64(s);
    if (ctx.trace_id == 0) ctx.trace_id = 1;
    ctx.span_id = util::splitmix64(s);
    return ctx;
  }

  /// Deterministic child span id for a labeled stage under this span.
  [[nodiscard]] std::uint64_t child_span_id(
      std::uint64_t label) const noexcept {
    std::uint64_t s = trace_id ^ (span_id + 0x94d049bb133111ebULL * (label + 1));
    return util::splitmix64(s);
  }

  /// Context a child span would propagate onward (same trace, child span).
  [[nodiscard]] TraceContext child(std::uint64_t label) const noexcept {
    return TraceContext{trace_id, child_span_id(label)};
  }
};

/// 16-hex-digit rendering of an id (how ids appear in trace-event args).
[[nodiscard]] std::string trace_id_hex(std::uint64_t id);

/// Parses what trace_id_hex produced; 0 on malformed input.
[[nodiscard]] std::uint64_t parse_trace_id_hex(std::string_view hex);

namespace real {

/// Times a scope and records it as a *parented* span: the event carries
/// trace_id/span_id/parent_span_id args so cross-process viewers can join
/// stages of one request. Inert when the tracer is inactive or the context
/// is unsampled (one atomic load + one branch).
class CtxSpan {
 public:
  CtxSpan(const char* name, const TraceContext& parent, std::uint64_t label,
          const char* cat = "ftl") {
    if (parent.sampled() && tracer().active()) {
      name_ = name;
      cat_ = cat;
      ctx_.trace_id = parent.trace_id;
      ctx_.span_id = parent.child_span_id(label);
      parent_span_ = parent.span_id;
      start_us_ = tracer().now_us();
    }
  }
  ~CtxSpan() {
    if (name_ != nullptr) {
      Tracer& t = tracer();
      t.record_span(name_, cat_, start_us_, t.now_us() - start_us_,
                    ctx_.trace_id, ctx_.span_id, parent_span_);
    }
  }
  CtxSpan(const CtxSpan&) = delete;
  CtxSpan& operator=(const CtxSpan&) = delete;

  /// Context for children of this span (unsampled when the span is inert).
  [[nodiscard]] TraceContext context() const noexcept { return ctx_; }

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  TraceContext ctx_;
  std::uint64_t parent_span_ = 0;
  double start_us_ = 0.0;
};

/// Thread-safe sliding-window histogram: a ring of time epochs, each a set
/// of atomic bins. observe() is lock-free on the fast path (relaxed atomic
/// increment into the current epoch); epoch rotation takes a mutex but
/// happens at most once per epoch period. flush() recomputes windowed
/// p50/p95/p99/p999 (and the window sample count) into plain gauges named
/// `<name>.window_p50` etc., so the existing Prometheus serializer exports
/// them with no new machinery. Quantiles interpolate within bins exactly
/// like util::Histogram.
///
/// Concurrent observers racing a rotation may land a sample in an epoch
/// being cleared; that is monitoring-grade accuracy by design (same stance
/// as Histogram::sample()).
class SlidingHistogram {
 public:
  /// Window = `window_epochs` epochs of `epoch` wall time each. Gauges are
  /// registered on `reg` (default: the process-wide registry) under
  /// `name.window_p50|p95|p99|p999|count` with `labels`.
  SlidingHistogram(std::string_view name, double lo, double hi,
                   std::size_t bins, std::size_t window_epochs,
                   std::chrono::milliseconds epoch, Registry* reg = nullptr,
                   const Labels& labels = {});

  void observe(double x) noexcept;

  /// Publishes the current window's quantiles and count to the gauges.
  /// Call from the scrape/export path (cost: one pass over the ring).
  void flush();

  /// Quantile over the live window (flush-independent; for tests).
  [[nodiscard]] double quantile(double q) const;
  /// Samples currently inside the window.
  [[nodiscard]] std::uint64_t window_count() const;

  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }

  SlidingHistogram(const SlidingHistogram&) = delete;
  SlidingHistogram& operator=(const SlidingHistogram&) = delete;

 private:
  struct Epoch {
    std::unique_ptr<std::atomic<std::uint64_t>[]> bins;
    std::atomic<std::uint64_t> start_idx{0};  ///< epoch index the bins belong to
  };

  /// Epoch index for "now"; rotates the ring forward when time moved on.
  std::size_t current_slot() noexcept;
  void collect(std::vector<std::uint64_t>& bins_out,
               std::uint64_t& total_out) const;

  double lo_;
  double hi_;
  std::size_t bins_;
  std::size_t window_epochs_;
  std::chrono::nanoseconds epoch_len_;
  std::chrono::steady_clock::time_point t0_;
  std::vector<Epoch> ring_;
  std::atomic<std::uint64_t> cur_epoch_{0};
  std::mutex rotate_mu_;

  Gauge& g_p50_;
  Gauge& g_p95_;
  Gauge& g_p99_;
  Gauge& g_p999_;
  Gauge& g_count_;
};

}  // namespace real

namespace noop {

struct CtxSpan {
  CtxSpan(const char*, const TraceContext&, std::uint64_t,
          const char* = "ftl") noexcept {}
  CtxSpan(const CtxSpan&) = delete;
  CtxSpan& operator=(const CtxSpan&) = delete;
  [[nodiscard]] TraceContext context() const noexcept { return {}; }
};

struct SlidingHistogram {
  SlidingHistogram(std::string_view, double, double, std::size_t, std::size_t,
                   std::chrono::milliseconds, Registry* = nullptr,
                   const Labels& = {}) noexcept {}
  void observe(double) const noexcept {}
  void flush() const noexcept {}
  [[nodiscard]] double quantile(double) const noexcept { return 0.0; }
  [[nodiscard]] std::uint64_t window_count() const noexcept { return 0; }
  [[nodiscard]] double lo() const noexcept { return 0.0; }
  [[nodiscard]] double hi() const noexcept { return 1.0; }
  SlidingHistogram(const SlidingHistogram&) = delete;
  SlidingHistogram& operator=(const SlidingHistogram&) = delete;
};

}  // namespace noop

#if FTL_OBS_ENABLED
using CtxSpan = real::CtxSpan;
using SlidingHistogram = real::SlidingHistogram;
#else
using CtxSpan = noop::CtxSpan;
using SlidingHistogram = noop::SlidingHistogram;
#endif

}  // namespace ftl::obs

// Scoped timers and span tracing in Chrome trace_event JSON.
//
// The emitted file loads directly in chrome://tracing or
// https://ui.perfetto.dev (File > Open). Collection is off until
// Tracer::start(); an inactive tracer costs one relaxed atomic load per
// span, and with FTL_OBS_ENABLED=OFF spans compile away entirely (the
// no-op twins below).
//
// Span names are `const char*` and are NOT copied: use string literals (or
// storage that outlives the tracer buffer).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace ftl::obs {

namespace real {

class Tracer {
 public:
  /// Clears the buffer and starts collecting; timestamps are relative to
  /// this call.
  void start();
  void stop();
  [[nodiscard]] bool active() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }

  /// Microseconds since start() (0 when never started).
  [[nodiscard]] double now_us() const;

  /// Appends a complete ("ph":"X") event. No-op when inactive.
  void record_complete(const char* name, const char* cat, double ts_us,
                       double dur_us);
  /// Appends an instant ("ph":"i") event. No-op when inactive.
  void record_instant(const char* name, const char* cat);

  /// Appends a complete event carrying trace/span/parent ids in its args
  /// (hex strings), joinable across processes by `ftlbench trace-merge`.
  /// No-op when inactive.
  void record_span(const char* name, const char* cat, double ts_us,
                   double dur_us, std::uint64_t trace_id,
                   std::uint64_t span_id, std::uint64_t parent_span_id);

  /// Appends an instant event tagged with a trace id and a `stage` arg
  /// (e.g. the deadline-miss attribution marker). `stage` is not copied:
  /// string literals only, like span names. No-op when inactive.
  void record_instant_tagged(const char* name, const char* cat,
                             std::uint64_t trace_id, const char* stage);

  /// Microseconds between start() and `tp` (may be negative for earlier
  /// timestamps; 0 when never started).
  [[nodiscard]] double ts_us(std::chrono::steady_clock::time_point tp) const;

  /// start()'s position on the steady clock, in nanoseconds since the
  /// clock's epoch. Two tracers on the same host share that epoch, which
  /// is what lets trace-merge re-base client and server files onto one
  /// timeline. 0 when never started.
  [[nodiscard]] std::uint64_t t0_steady_ns() const;

  [[nodiscard]] std::size_t size() const;

  /// Serializes the buffer as a Chrome trace JSON document.
  [[nodiscard]] std::string json() const;

  /// Writes json() to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  struct Event {
    const char* name;
    const char* cat;
    char phase;  // 'X' complete, 'i' instant
    double ts_us;
    double dur_us;
    std::uint64_t tid;
    // Parented-span identity; 0 = plain (un-parented) event.
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_span_id = 0;
    const char* stage = nullptr;  // optional `stage` arg (literals only)
  };

  std::atomic<bool> active_{false};
  std::chrono::steady_clock::time_point t0_{};
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

Tracer& tracer() noexcept;

/// Times a scope and records it as a trace span — if the tracer was active
/// when the scope opened. One atomic load when tracing is off.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* cat = "ftl") {
    if (tracer().active()) {
      name_ = name;
      cat_ = cat;
      start_us_ = tracer().now_us();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      Tracer& t = tracer();
      t.record_complete(name_, cat_, start_us_, t.now_us() - start_us_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  double start_us_ = 0.0;
};

/// Scoped timer feeding a duration histogram (microseconds) — the metrics
/// side of span timing, always on while obs is enabled (independent of the
/// tracer being started).
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram& h)
      : h_(&h), t0_(std::chrono::steady_clock::now()) {}
  ~ScopedHistogramTimer() {
    const auto dt = std::chrono::steady_clock::now() - t0_;
    h_->observe(std::chrono::duration<double, std::micro>(dt).count());
  }
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace real

namespace noop {

struct Tracer {
  void start() const noexcept {}
  void stop() const noexcept {}
  [[nodiscard]] bool active() const noexcept { return false; }
  [[nodiscard]] double now_us() const noexcept { return 0.0; }
  void record_complete(const char*, const char*, double, double) const
      noexcept {}
  void record_instant(const char*, const char*) const noexcept {}
  void record_span(const char*, const char*, double, double, std::uint64_t,
                   std::uint64_t, std::uint64_t) const noexcept {}
  void record_instant_tagged(const char*, const char*, std::uint64_t,
                             const char*) const noexcept {}
  [[nodiscard]] double ts_us(std::chrono::steady_clock::time_point) const
      noexcept {
    return 0.0;
  }
  [[nodiscard]] std::uint64_t t0_steady_ns() const noexcept { return 0; }
  [[nodiscard]] std::size_t size() const noexcept { return 0; }
  [[nodiscard]] std::string json() const {
    return "{\"traceEvents\":[]}";  // still a valid (empty) trace
  }
  bool write(const std::string&) const noexcept { return false; }
};

inline Tracer& tracer() noexcept {
  static Tracer t;
  return t;
}

struct ScopedSpan {
  explicit ScopedSpan(const char*, const char* = "ftl") noexcept {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

struct ScopedHistogramTimer {
  explicit ScopedHistogramTimer(Histogram&) noexcept {}
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;
};

}  // namespace noop

#if FTL_OBS_ENABLED
using Tracer = real::Tracer;
using ScopedSpan = real::ScopedSpan;
using ScopedHistogramTimer = real::ScopedHistogramTimer;
inline Tracer& tracer() noexcept { return real::tracer(); }
#else
using Tracer = noop::Tracer;
using ScopedSpan = noop::ScopedSpan;
using ScopedHistogramTimer = noop::ScopedHistogramTimer;
inline Tracer& tracer() noexcept { return noop::tracer(); }
#endif

}  // namespace ftl::obs

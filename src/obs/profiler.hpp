// In-process sampling CPU profiler — the "where does the CPU go" layer of
// the observability subsystem.
//
// Four pieces:
//  * real::Profiler arms a POSIX CPU-time timer (timer_create on the
//    process CPU clock, setitimer(ITIMER_PROF) fallback) that delivers
//    SIGPROF at a configurable Hz. The async-signal-safe handler captures
//    the interrupted thread's stack into a preallocated lock-free sample
//    arena: threads claim fixed-size chunks with one fetch_add and publish
//    each sample with a release store, so the hot path takes no locks and
//    allocates nothing. Because the timer runs on the *CPU* clock, idle
//    (blocked) threads are never sampled and sampling pressure follows
//    actual compute.
//  * Samples are tagged with the current profile stage — a thread-local
//    `const char*` set by set_profile_stage()/ProfileStage (string
//    literals only, like tracer span names). ftlcoordd sets it at the same
//    five boundaries that feed the `coordd.stage_us` histograms, so
//    profile weight joins against the per-stage latency attribution.
//  * Symbolization is lazy (export time, never in the handler): the main
//    binary's own ELF .symtab/.dynsym is parsed from /proc/self/exe so
//    static functions and lambdas resolve without -rdynamic, with dladdr
//    covering shared-library frames and a hex fallback for the rest.
//  * Two deterministic exporters: FlameGraph folded stacks
//    (`frame;frame;leaf count` lines, lexicographically sorted so golden
//    tests work) and speedscope JSON ("sampled" profile for
//    https://www.speedscope.app). Both are pure functions over a sample
//    vector and an injectable symbolizer, so they unit-test without
//    signals.
//
// House rules: real/noop twins behind FTL_OBS_ENABLED (the noop Profiler
// is an empty type asserted by obs_noop_test; set_profile_stage compiles
// to nothing), and zero overhead when disarmed — the handler is only
// installed while a session is armed, and the stage tag is one
// thread-local pointer store.
//
// One session at a time: start() fails (returns false) while another
// profile session is armed, which is what lets ftlcoordd's
// `GET /profile?seconds=N&hz=H` endpoint and a bench's `--profile-out`
// share one process-wide sampler safely.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"  // FTL_OBS_ENABLED default + obs::kEnabled

namespace ftl::obs {

/// Hard cap on captured frames per sample (the arena slot size).
inline constexpr std::size_t kProfilerMaxDepth = 64;

struct ProfilerOptions {
  /// Samples per second of *process CPU time* (clamped to [1, 10000]).
  /// 99 Hz is the conventional default: fine enough for hotspots, cheap
  /// enough to leave on, and coprime with common 10/100 Hz periodic work.
  int hz = 99;
  /// Frames kept per sample (clamped to [4, kProfilerMaxDepth]).
  std::size_t max_depth = 32;
  /// Total sample slots in the arena, shared by all threads. At 99 Hz the
  /// default holds ~11 CPU-minutes of samples; overflow increments
  /// dropped() rather than reallocating.
  std::size_t capacity = 1u << 16;
};

/// One captured stack: return addresses leaf-first, plus the profile-stage
/// tag (string literal or nullptr) the thread carried when sampled.
struct ProfileSample {
  const char* stage = nullptr;
  std::vector<std::uintptr_t> pcs;
};

/// Maps a pc to a human-readable frame name. Injectable so the exporters
/// are deterministic under test.
using SymbolizeFn = std::function<std::string(std::uintptr_t)>;

/// Best-effort symbolization of one pc: own-ELF .symtab/.dynsym lookup
/// (demangled) for main-binary frames, dladdr for shared libraries,
/// "[module]" when only the file is known, "0x<hex>" otherwise.
[[nodiscard]] std::string symbolize_pc(std::uintptr_t pc);

/// FlameGraph-compatible folded stacks: one `frame;frame;leaf count` line
/// per distinct stack, root-first, lexicographically sorted (deterministic
/// for golden tests; flamegraph.pl and speedscope both ingest this
/// directly). A tagged sample gains a `stage:<name>` root frame so stage
/// weight is visible at the flame base. Non-leaf return addresses are
/// symbolized at pc-1 (the call site, not the return target).
[[nodiscard]] std::string fold_profile(const std::vector<ProfileSample>& samples,
                                       const SymbolizeFn& symbolize);

/// speedscope JSON ("sampled" profile): shared frame table + one weighted
/// entry per distinct stack, both in sorted order. `name` labels the
/// profile in the speedscope UI.
[[nodiscard]] std::string speedscope_profile(
    const std::vector<ProfileSample>& samples, const SymbolizeFn& symbolize,
    std::string_view name);

namespace real {

/// The process-wide sampling profiler. All state lives behind a single
/// armed session (SIGPROF is process-global), so this class is a handle:
/// construct anywhere, but only one start() succeeds at a time. Use the
/// profiler() singleton unless a test needs an independent handle.
class Profiler {
 public:
  /// Arms the sampler. False when another session is already armed or the
  /// timer/handler could not be installed. Clamps the options into their
  /// documented ranges (query the result via options()).
  bool start(const ProfilerOptions& opts = {});

  /// Disarms the timer and waits for in-flight handlers to drain. The
  /// captured samples stay readable until the next start(). Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept;

  /// Samples published so far (readable while armed).
  [[nodiscard]] std::uint64_t sample_count() const noexcept;
  /// Samples lost to arena overflow.
  [[nodiscard]] std::uint64_t dropped() const noexcept;
  /// The clamped options of the current (or last) session.
  [[nodiscard]] ProfilerOptions options() const noexcept { return opts_; }

  /// Snapshot of every published sample.
  [[nodiscard]] std::vector<ProfileSample> samples() const;
  /// fold_profile(samples(), symbolize_pc).
  [[nodiscard]] std::string folded() const;
  /// speedscope_profile(samples(), symbolize_pc, name).
  [[nodiscard]] std::string speedscope(std::string_view name) const;

 private:
  ProfilerOptions opts_{};
};

/// Process-wide profiler handle (what ObsSession and ftlcoordd use).
Profiler& profiler();

/// Sets the calling thread's profile-stage tag; returns the previous tag.
/// `stage` must be a string literal or otherwise outlive the session (the
/// pointer is stored, never copied — same contract as tracer span names).
const char* set_profile_stage(const char* stage) noexcept;

/// The calling thread's current tag (nullptr = untagged).
[[nodiscard]] const char* profile_stage() noexcept;

/// RAII stage tag for scoped hot sections.
class ProfileStage {
 public:
  explicit ProfileStage(const char* stage) noexcept
      : prev_(set_profile_stage(stage)) {}
  ~ProfileStage() { set_profile_stage(prev_); }
  ProfileStage(const ProfileStage&) = delete;
  ProfileStage& operator=(const ProfileStage&) = delete;

 private:
  const char* prev_;
};

}  // namespace real

namespace noop {

struct Profiler {
  bool start(const ProfilerOptions& = {}) const noexcept { return false; }
  void stop() const noexcept {}
  [[nodiscard]] bool running() const noexcept { return false; }
  [[nodiscard]] std::uint64_t sample_count() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return 0; }
  [[nodiscard]] ProfilerOptions options() const noexcept { return {}; }
  [[nodiscard]] std::vector<ProfileSample> samples() const { return {}; }
  [[nodiscard]] std::string folded() const { return {}; }
  [[nodiscard]] std::string speedscope(std::string_view) const { return {}; }
};

inline Profiler& profiler() noexcept {
  static Profiler p;
  return p;
}

inline const char* set_profile_stage(const char*) noexcept { return nullptr; }
[[nodiscard]] inline const char* profile_stage() noexcept { return nullptr; }

struct ProfileStage {
  explicit ProfileStage(const char*) noexcept {}
  ProfileStage(const ProfileStage&) = delete;
  ProfileStage& operator=(const ProfileStage&) = delete;
};

}  // namespace noop

#if FTL_OBS_ENABLED
using Profiler = real::Profiler;
using ProfileStage = real::ProfileStage;
inline Profiler& profiler() { return real::profiler(); }
inline const char* set_profile_stage(const char* stage) noexcept {
  return real::set_profile_stage(stage);
}
[[nodiscard]] inline const char* profile_stage() noexcept {
  return real::profile_stage();
}
#else
using Profiler = noop::Profiler;
using ProfileStage = noop::ProfileStage;
inline Profiler& profiler() noexcept { return noop::profiler(); }
inline const char* set_profile_stage(const char* stage) noexcept {
  return noop::set_profile_stage(stage);
}
[[nodiscard]] inline const char* profile_stage() noexcept {
  return noop::profile_stage();
}
#endif

}  // namespace ftl::obs

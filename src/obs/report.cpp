#include "obs/report.hpp"

#include <fstream>

#include "obs/json.hpp"
#include "util/histogram.hpp"

namespace ftl::obs {

const char* git_rev() {
#ifdef FTL_GIT_REV
  return FTL_GIT_REV;
#else
  return "unknown";
#endif
}

namespace {

void write_labels(json::Writer& w, const Labels& labels) {
  w.key("labels");
  w.begin_object();
  for (const auto& [k, v] : labels) {
    w.key(k);
    w.value(v);
  }
  w.end_object();
}

}  // namespace

std::string run_report_json(const Snapshot& snapshot, const RunMeta& meta) {
  json::Writer w;
  w.begin_object();
  w.key("schema");
  w.value("ftl.obs.run_report/v1");

  w.key("meta");
  w.begin_object();
  w.key("name");
  w.value(meta.name);
  w.key("seed");
  w.value(meta.seed);
  w.key("config");
  w.value(meta.config);
  w.key("git_rev");
  w.value(git_rev());
  w.key("obs_enabled");
  w.value(kEnabled);
  w.key("wall_time_s");
  w.value(meta.wall_time_s);
  w.key("cpu_time_s");
  w.value(meta.cpu_time_s);
  w.end_object();

  w.key("metrics");
  write_metrics_json(w, snapshot);

  w.end_object();  // root
  return w.take();
}

void write_metrics_json(json::Writer& w, const Snapshot& snapshot) {
  w.begin_object();

  w.key("counters");
  w.begin_array();
  for (const CounterSample& c : snapshot.counters) {
    w.begin_object();
    w.key("name");
    w.value(c.name);
    write_labels(w, c.labels);
    w.key("value");
    w.value(c.value);
    w.end_object();
  }
  w.end_array();

  w.key("gauges");
  w.begin_array();
  for (const GaugeSample& g : snapshot.gauges) {
    w.begin_object();
    w.key("name");
    w.value(g.name);
    write_labels(w, g.labels);
    w.key("value");
    w.value(g.value);
    w.end_object();
  }
  w.end_array();

  w.key("histograms");
  w.begin_array();
  for (const HistogramSample& h : snapshot.histograms) {
    w.begin_object();
    w.key("name");
    w.value(h.name);
    write_labels(w, h.labels);
    w.key("lo");
    w.value(h.lo);
    w.key("hi");
    w.value(h.hi);
    w.key("counts");
    w.begin_array();
    for (const std::size_t c : h.counts) w.value(c);
    w.end_array();
    w.key("underflow");
    w.value(h.underflow);
    w.key("overflow");
    w.value(h.overflow);
    w.key("total");
    w.value(h.total);
    const util::Histogram uh = h.to_histogram();
    w.key("p50");
    w.value(uh.quantile(0.50));
    w.key("p95");
    w.value(uh.quantile(0.95));
    w.key("p99");
    w.value(uh.quantile(0.99));
    w.end_object();
  }
  w.end_array();

  w.end_object();  // metrics
}

bool write_run_report(const std::string& path, const Snapshot& snapshot,
                      const RunMeta& meta) {
  std::ofstream out(path);
  if (!out) return false;
  out << run_report_json(snapshot, meta) << '\n';
  return static_cast<bool>(out);
}

}  // namespace ftl::obs

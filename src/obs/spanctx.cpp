#include "obs/spanctx.hpp"

#include <algorithm>
#include <cstdio>

namespace ftl::obs {

std::string trace_id_hex(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buf, 16);
}

std::uint64_t parse_trace_id_hex(std::string_view hex) {
  if (hex.empty() || hex.size() > 16) return 0;
  std::uint64_t v = 0;
  for (const char c : hex) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return 0;
    }
  }
  return v;
}

namespace real {

namespace {

std::string windowed_gauge_name(std::string_view base, const char* suffix) {
  std::string out(base);
  out += suffix;
  return out;
}

}  // namespace

SlidingHistogram::SlidingHistogram(std::string_view name, double lo, double hi,
                                   std::size_t bins,
                                   std::size_t window_epochs,
                                   std::chrono::milliseconds epoch,
                                   Registry* reg, const Labels& labels)
    : lo_(lo),
      hi_(hi > lo ? hi : lo + 1.0),
      bins_(bins == 0 ? 1 : bins),
      window_epochs_(window_epochs == 0 ? 1 : window_epochs),
      epoch_len_(std::chrono::duration_cast<std::chrono::nanoseconds>(
          epoch.count() > 0 ? epoch : std::chrono::milliseconds(1))),
      t0_(std::chrono::steady_clock::now()),
      // One spare slot beyond the window so the epoch being cleared during
      // a rotation is never one the window still reads.
      ring_(window_epochs_ + 1),
      g_p50_(
          (reg != nullptr ? *reg : registry())
              .gauge(windowed_gauge_name(name, ".window_p50"), labels)),
      g_p95_(
          (reg != nullptr ? *reg : registry())
              .gauge(windowed_gauge_name(name, ".window_p95"), labels)),
      g_p99_(
          (reg != nullptr ? *reg : registry())
              .gauge(windowed_gauge_name(name, ".window_p99"), labels)),
      g_p999_(
          (reg != nullptr ? *reg : registry())
              .gauge(windowed_gauge_name(name, ".window_p999"), labels)),
      g_count_(
          (reg != nullptr ? *reg : registry())
              .gauge(windowed_gauge_name(name, ".window_count"), labels)) {
  for (Epoch& e : ring_) {
    e.bins = std::make_unique<std::atomic<std::uint64_t>[]>(bins_);
    for (std::size_t b = 0; b < bins_; ++b) {
      e.bins[b].store(0, std::memory_order_relaxed);
    }
    e.start_idx.store(~std::uint64_t{0}, std::memory_order_relaxed);
  }
  ring_[0].start_idx.store(0, std::memory_order_relaxed);
}

std::size_t SlidingHistogram::current_slot() noexcept {
  const auto elapsed = std::chrono::steady_clock::now() - t0_;
  const std::uint64_t epoch = static_cast<std::uint64_t>(
      elapsed.count() / epoch_len_.count());
  const std::size_t slot = static_cast<std::size_t>(epoch % ring_.size());
  if (ring_[slot].start_idx.load(std::memory_order_acquire) != epoch) {
    // First observer of a new epoch claims and clears its slot. The mutex
    // only serializes rotations, never the per-sample fast path.
    const std::lock_guard<std::mutex> lock(rotate_mu_);
    if (ring_[slot].start_idx.load(std::memory_order_relaxed) != epoch) {
      for (std::size_t b = 0; b < bins_; ++b) {
        ring_[slot].bins[b].store(0, std::memory_order_relaxed);
      }
      ring_[slot].start_idx.store(epoch, std::memory_order_release);
      std::uint64_t cur = cur_epoch_.load(std::memory_order_relaxed);
      while (cur < epoch && !cur_epoch_.compare_exchange_weak(
                                cur, epoch, std::memory_order_relaxed)) {
      }
    }
  }
  return slot;
}

void SlidingHistogram::observe(double x) noexcept {
  const std::size_t slot = current_slot();
  const double clamped = std::min(std::max(x, lo_), hi_);
  std::size_t b = static_cast<std::size_t>((clamped - lo_) / (hi_ - lo_) *
                                           static_cast<double>(bins_));
  if (b >= bins_) b = bins_ - 1;
  ring_[slot].bins[b].fetch_add(1, std::memory_order_relaxed);
}

void SlidingHistogram::collect(std::vector<std::uint64_t>& bins_out,
                               std::uint64_t& total_out) const {
  bins_out.assign(bins_, 0);
  total_out = 0;
  // The window is anchored at wall-clock "now", not at the last observed
  // epoch: after an idle gap with no observers (nothing advanced
  // cur_epoch_), old epochs must age out of the window instead of
  // reporting stale percentiles forever.
  const auto elapsed = std::chrono::steady_clock::now() - t0_;
  const std::uint64_t wall_epoch =
      static_cast<std::uint64_t>(elapsed.count() / epoch_len_.count());
  const std::uint64_t cur =
      std::max(cur_epoch_.load(std::memory_order_relaxed), wall_epoch);
  const std::uint64_t oldest =
      cur >= window_epochs_ - 1 ? cur - (window_epochs_ - 1) : 0;
  for (const Epoch& e : ring_) {
    const std::uint64_t idx = e.start_idx.load(std::memory_order_acquire);
    if (idx == ~std::uint64_t{0} || idx < oldest || idx > cur) continue;
    for (std::size_t b = 0; b < bins_; ++b) {
      const std::uint64_t c = e.bins[b].load(std::memory_order_relaxed);
      bins_out[b] += c;
      total_out += c;
    }
  }
}

double SlidingHistogram::quantile(double q) const {
  std::vector<std::uint64_t> bins;
  std::uint64_t total = 0;
  collect(bins, total);
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  const double width = (hi_ - lo_) / static_cast<double>(bins_);
  for (std::size_t b = 0; b < bins_; ++b) {
    const std::uint64_t c = bins[b];
    if (static_cast<double>(seen + c) >= target && c > 0) {
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(c);
      return lo_ + (static_cast<double>(b) + std::min(1.0, std::max(0.0, frac))) *
                       width;
    }
    seen += c;
  }
  return hi_;
}

std::uint64_t SlidingHistogram::window_count() const {
  std::vector<std::uint64_t> bins;
  std::uint64_t total = 0;
  collect(bins, total);
  return total;
}

void SlidingHistogram::flush() {
  // Nudge the ring forward so long-idle windows decay to empty even with
  // no observers.
  (void)current_slot();
  g_p50_.set(quantile(0.50));
  g_p95_.set(quantile(0.95));
  g_p99_.set(quantile(0.99));
  g_p999_.set(quantile(0.999));
  g_count_.set(static_cast<double>(window_count()));
}

}  // namespace real

}  // namespace ftl::obs

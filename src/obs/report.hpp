// Machine-readable run reports: one JSON file per run carrying the metric
// registry snapshot plus enough metadata (seed, config, git revision, wall
// time) to reproduce the run and track its numbers over time. This is the
// file format behind the benches' `--metrics-out=<path>` flag and the CI
// perf-trajectory artifacts (`BENCH_*.json`).
//
// Schema (`ftl.obs.run_report/v1`):
//   {
//     "schema": "ftl.obs.run_report/v1",
//     "meta": {"name": ..., "seed": ..., "config": ..., "git_rev": ...,
//              "obs_enabled": true|false, "wall_time_s": ...,
//              "cpu_time_s": ...},
//     "metrics": {
//       "counters":   [{"name", "labels": {...}, "value"}, ...],
//       "gauges":     [{"name", "labels": {...}, "value"}, ...],
//       "histograms": [{"name", "labels": {...}, "lo", "hi", "counts": [...],
//                       "underflow", "overflow", "total",
//                       "p50", "p95", "p99"}, ...]
//     }
//   }
// Histogram quantiles are precomputed via util::Histogram so downstream
// tooling can plot trajectories without re-deriving them.
#pragma once

#include <cstdint>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace ftl::obs {

struct RunMeta {
  /// Run identity, e.g. the bench binary name.
  std::string name;
  std::uint64_t seed = 0;
  /// Free-form config description (flag values, sweep shape, ...).
  std::string config;
  double wall_time_s = 0.0;
  /// Process CPU time (user+system) consumed by the run; 0 when unmeasured.
  double cpu_time_s = 0.0;
};

/// Git revision baked in at configure time (FTL_GIT_REV), or "unknown".
[[nodiscard]] const char* git_rev();

/// Serializes a snapshot + metadata as a run-report JSON document.
[[nodiscard]] std::string run_report_json(const Snapshot& snapshot,
                                          const RunMeta& meta);

/// Writes the `metrics` object ({"counters": ..., "gauges": ...,
/// "histograms": ...}) for `snapshot` into an open writer. Shared between
/// the run-report serializer and the periodic-snapshot appender so both
/// files carry the exact same metric encoding.
void write_metrics_json(json::Writer& w, const Snapshot& snapshot);

/// Writes run_report_json to `path`; returns false on I/O failure.
bool write_run_report(const std::string& path, const Snapshot& snapshot,
                      const RunMeta& meta);

}  // namespace ftl::obs

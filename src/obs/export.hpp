// Live metrics export: Prometheus text exposition for registry snapshots,
// periodic snapshot appending for long runs, and re-parsing of the JSON
// files the subsystem writes (run reports, snapshot series) back into
// Snapshot values for downstream tooling (ftlbench, tests).
//
// Three pieces:
//  * prometheus_text() serializes a Snapshot in the Prometheus text
//    exposition format (version 0.0.4): `# TYPE` lines per metric family
//    (preceded by `# HELP` for families registered via set_metric_help),
//    label escaping, cumulative `_bucket{le=...}` histogram encoding.
//    Metric names are sanitised (`lb.queue_depth` -> `ftl_lb_queue_depth`)
//    and counters get the conventional `_total` suffix. Histogram `_sum`
//    is approximated from bin midpoints (the atomic bins do not track an
//    exact sum); the relative error is bounded by half a bin width.
//  * PeriodicSnapshotter runs a background thread that appends one
//    timestamped `ftl.obs.snapshot/v1` JSON line to a file at a fixed
//    interval — one line immediately at start(), one per tick, and a final
//    one at stop(), so even short runs record a start/end pair. This is
//    what the benches' `--metrics-every=<ms>` flag drives.
//  * parse_run_report() / snapshot_from_json() are the strict readers for
//    `ftl.obs.run_report/v1` documents, used by the ftlbench trajectory
//    driver and by tests to round-trip what the writers emit.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

namespace ftl::obs {

struct ExportOptions {
  /// Prepended to every metric family name after sanitisation.
  std::string prefix = "ftl_";
  /// When set, appended (in milliseconds since the Unix epoch) after every
  /// sample value, per the exposition grammar.
  std::optional<std::int64_t> timestamp_ms;
};

/// Sanitises a dotted metric name into a valid Prometheus metric name:
/// `prefix` + name with every character outside [a-zA-Z0-9_:] replaced by
/// '_'. A leading digit after the prefix is also escaped.
[[nodiscard]] std::string prometheus_name(std::string_view name,
                                          std::string_view prefix = "ftl_");

/// Escapes a label value for the exposition format (backslash, double
/// quote, and newline escapes).
[[nodiscard]] std::string prometheus_label_value(std::string_view v);

// ---------------------------------------------------------------------------
// Help registry: optional per-family documentation strings.
// ---------------------------------------------------------------------------

/// Registers a help string for a metric family, keyed by the *dotted*
/// metric name (e.g. "qnet.live.frames" — the serializer maps it to the
/// sanitised family, including the counter `_total` suffix). Registered
/// families gain a `# HELP` line emitted immediately before their `# TYPE`
/// line. Process-global, thread-safe, last-write-wins; an empty help
/// string unregisters.
void set_metric_help(std::string_view dotted_name, std::string_view help);

/// The registered help string for a dotted metric name ("" if none).
[[nodiscard]] std::string metric_help(std::string_view dotted_name);

/// Escapes a help string for a `# HELP` line (backslash and newline; the
/// exposition format does not escape quotes in help text).
[[nodiscard]] std::string prometheus_help_text(std::string_view help);

/// Serializes a snapshot in the Prometheus text exposition format.
[[nodiscard]] std::string prometheus_text(const Snapshot& snapshot,
                                          const ExportOptions& opts = {});

/// Writes prometheus_text to `path` (node-exporter textfile-collector
/// style: whole-file overwrite); returns false on I/O failure.
bool write_prometheus_text(const std::string& path, const Snapshot& snapshot,
                           const ExportOptions& opts = {});

// ---------------------------------------------------------------------------
// JSON re-parsing (run reports and snapshot lines back into Snapshot).
// ---------------------------------------------------------------------------

/// Rebuilds a Snapshot from a parsed `metrics` JSON object (the shape
/// write_metrics_json emits). Returns nullopt when the shape is wrong.
[[nodiscard]] std::optional<Snapshot> snapshot_from_json(
    const json::Value& metrics);

/// A fully parsed `ftl.obs.run_report/v1` document.
struct ParsedRunReport {
  std::string name;
  std::uint64_t seed = 0;
  std::string config;
  std::string git_rev;
  bool obs_enabled = true;
  double wall_time_s = 0.0;
  double cpu_time_s = 0.0;
  Snapshot metrics;
};

/// Strict parse of a run-report document; nullopt on syntax errors, a
/// wrong `schema` tag, or missing required fields.
[[nodiscard]] std::optional<ParsedRunReport> parse_run_report(
    std::string_view text);

// ---------------------------------------------------------------------------
// Periodic snapshotting.
// ---------------------------------------------------------------------------

/// Appends timestamped registry snapshots to a file from a background
/// thread. Each line is a standalone JSON document:
///   {"schema": "ftl.obs.snapshot/v1", "seq": N, "t_ms": <since start()>,
///    "unix_ms": <system clock>, "metrics": {...}}
/// so the file is JSONL and tail-able while the run is live. start() and
/// stop() are idempotent and safe to race from multiple threads; the
/// destructor stops the thread. Not gated by FTL_OBS_ENABLED: with the
/// kill switch off the registry snapshot is simply empty, and the
/// timestamps alone still record liveness.
class PeriodicSnapshotter {
 public:
  /// `registry` defaults to the process-wide obs::registry().
  PeriodicSnapshotter(std::string path, std::chrono::milliseconds interval,
                      Registry* registry = nullptr);
  ~PeriodicSnapshotter();

  PeriodicSnapshotter(const PeriodicSnapshotter&) = delete;
  PeriodicSnapshotter& operator=(const PeriodicSnapshotter&) = delete;

  /// Starts the background thread and appends the seq-0 snapshot. No-op if
  /// already running.
  void start();

  /// Stops the thread and appends a final snapshot. No-op if not running.
  void stop();

  [[nodiscard]] bool running() const;

  /// Lines successfully appended so far.
  [[nodiscard]] std::uint64_t snapshots_written() const;

  /// True unless any append failed (missing directory, disk full, ...).
  [[nodiscard]] bool ok() const;

 private:
  void loop();
  void append_snapshot();

  const std::string path_;
  const std::chrono::milliseconds interval_;
  Registry* const registry_;

  std::mutex lifecycle_mu_;  // serializes start()/stop() (thread join)
  mutable std::mutex mu_;    // guards everything below
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;     // guarded by mu_
  bool stop_requested_ = false;
  std::uint64_t written_ = 0;
  bool ok_ = true;
  std::uint64_t seq_ = 0;
  std::chrono::steady_clock::time_point start_time_;
};

}  // namespace ftl::obs

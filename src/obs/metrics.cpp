#include "obs/metrics.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace ftl::obs {

util::Histogram HistogramSample::to_histogram() const {
  return util::Histogram::from_counts(lo, hi, counts, underflow, overflow);
}

namespace real {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      hi_(hi),
      bins_(bins),
      counts_(new std::atomic<std::uint64_t>[bins]) {
  FTL_ASSERT(hi > lo);
  FTL_ASSERT(bins > 0);
  for (std::size_t i = 0; i < bins_; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double x) noexcept {
  // Mirrors util::Histogram::add exactly: clamp + edge tallies.
  if (x < lo_) {
    underflow_.fetch_add(1, std::memory_order_relaxed);
    counts_[0].fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (x >= hi_) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
    counts_[bins_ - 1].fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(bins_));
  idx = std::min(idx, bins_ - 1);
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
}

HistogramSample Histogram::sample() const {
  HistogramSample s;
  s.lo = lo_;
  s.hi = hi_;
  s.counts.resize(bins_);
  s.total = 0;
  for (std::size_t i = 0; i < bins_; ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
    s.total += s.counts[i];
  }
  s.underflow = underflow_.load(std::memory_order_relaxed);
  s.overflow = overflow_.load(std::memory_order_relaxed);
  return s;
}

util::Histogram Histogram::snapshot() const { return sample().to_histogram(); }

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i < bins_; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  underflow_.store(0, std::memory_order_relaxed);
  overflow_.store(0, std::memory_order_relaxed);
}

namespace {

/// Registration key: name plus labels in the order given. '\x1f' (unit
/// separator) cannot appear in sane metric names and keeps keys unambiguous.
std::string make_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1f';
    key += v;
  }
  return key;
}

}  // namespace

Counter& Registry::counter(std::string_view name, const Labels& labels) {
  const std::string key = make_key(name, labels);
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    it = counters_
             .emplace(key, Entry<Counter>{std::string(name), labels,
                                          std::make_unique<Counter>()})
             .first;
  }
  return *it->second.metric;
}

Gauge& Registry::gauge(std::string_view name, const Labels& labels) {
  const std::string key = make_key(name, labels);
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(key, Entry<Gauge>{std::string(name), labels,
                                        std::make_unique<Gauge>()})
             .first;
  }
  return *it->second.metric;
}

Histogram& Registry::histogram(std::string_view name, double lo, double hi,
                               std::size_t bins, const Labels& labels) {
  const std::string key = make_key(name, labels);
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(key, Entry<Histogram>{std::string(name), labels,
                                            std::make_unique<Histogram>(
                                                lo, hi, bins)})
             .first;
  }
  return *it->second.metric;
}

Snapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [key, e] : counters_) {
    s.counters.push_back({e.name, e.labels, e.metric->value()});
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [key, e] : gauges_) {
    s.gauges.push_back({e.name, e.labels, e.metric->value()});
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [key, e] : histograms_) {
    HistogramSample h = e.metric->sample();
    h.name = e.name;
    h.labels = e.labels;
    s.histograms.push_back(std::move(h));
  }
  return s;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, e] : counters_) e.metric->reset();
  for (auto& [key, e] : gauges_) e.metric->reset();
  for (auto& [key, e] : histograms_) e.metric->reset();
}

Registry& registry() noexcept {
  static Registry r;
  return r;
}

}  // namespace real
}  // namespace ftl::obs

// Metrics registry: labeled counters, gauges, and histograms cheap enough
// for simulator hot loops.
//
// Design rules:
//  * Write path is lock-free: counters/gauges/histogram bins are relaxed
//    atomics; incrementing never takes a lock. The registry mutex guards
//    only registration (once per metric) and snapshotting.
//  * Call sites hoist the registry lookup out of hot loops — fetch the
//    `Counter&` once per run, then `inc()` per event.
//  * Compile-time kill switch: building with -DFTL_OBS_ENABLED=OFF (CMake
//    option) swaps every type for an empty no-op twin with identical
//    signatures, so instrumented call sites compile to nothing. Both
//    implementations are always *compiled* (under obs::real / obs::noop);
//    only the `ftl::obs::X` aliases switch, which keeps the two
//    configurations honest and lets tests assert the no-op twins are
//    genuinely empty.
//
// Naming scheme: dotted lowercase `subsystem.object.metric`, e.g.
// `lb.queue_depth`, `qnet.pairs.generated`, `games.seesaw.rounds`.
// Distinguish sub-populations with labels, not name suffixes:
// `lb.chsh.rounds_won{source=quantum-chsh(v=1)}`.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/histogram.hpp"

#ifndef FTL_OBS_ENABLED
#define FTL_OBS_ENABLED 1
#endif

namespace ftl::obs {

/// Ordered key/value metric labels (kept as written; not canonicalised).
using Labels = std::vector<std::pair<std::string, std::string>>;

// Snapshot types are shared between the real and no-op implementations so
// report serialization works identically in both configurations.
struct CounterSample {
  std::string name;
  Labels labels;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  Labels labels;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  Labels labels;
  double lo = 0.0;
  double hi = 1.0;
  std::vector<std::size_t> counts;
  std::size_t underflow = 0;
  std::size_t overflow = 0;
  std::size_t total = 0;

  /// Rebuilds a util::Histogram (quantiles, ascii rendering) from the
  /// sampled counts.
  [[nodiscard]] util::Histogram to_histogram() const;
};

struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

// ---------------------------------------------------------------------------
// Real implementation.
// ---------------------------------------------------------------------------
namespace real {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins scalar with lock-free add / running-max updates.
class Gauge {
 public:
  void set(double x) noexcept { v_.store(x, std::memory_order_relaxed); }
  void add(double x) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + x, std::memory_order_relaxed)) {
    }
  }
  /// Raises the gauge to `x` if `x` exceeds the current value (high-water
  /// mark tracking).
  void update_max(double x) noexcept {
    double cur = v_.load(std::memory_order_relaxed);
    while (cur < x &&
           !v_.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Uniform-bin histogram with atomic bins; same binning semantics as
/// util::Histogram (out-of-range samples clamp into the edge bins and are
/// tallied as underflow/overflow).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void observe(double x) noexcept;

  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] std::size_t bins() const noexcept { return bins_; }

  /// Consistent-enough copy of the current state (bins are read with
  /// relaxed loads; concurrent writers may land between reads, which is
  /// fine for monitoring).
  [[nodiscard]] HistogramSample sample() const;

  /// The sampled counts rebuilt as a util::Histogram, for quantile() and
  /// ascii() reuse.
  [[nodiscard]] util::Histogram snapshot() const;

  void reset() noexcept;

 private:
  double lo_;
  double hi_;
  std::size_t bins_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> underflow_{0};
  std::atomic<std::uint64_t> overflow_{0};
};

/// Owns every metric; hands out stable references. Metrics are keyed by
/// (name, labels); registering the same key twice returns the same object.
class Registry {
 public:
  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  /// `lo`/`hi`/`bins` are fixed at first registration; later calls with the
  /// same key ignore them and return the existing histogram.
  Histogram& histogram(std::string_view name, double lo, double hi,
                       std::size_t bins, const Labels& labels = {});

  /// Point-in-time copy of every metric, sorted by registration key.
  [[nodiscard]] Snapshot snapshot() const;

  /// Zeroes every value but keeps registrations — outstanding references
  /// stay valid. Use between runs that want independent reports.
  void reset();

 private:
  template <class T>
  struct Entry {
    std::string name;
    Labels labels;
    std::unique_ptr<T> metric;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry<Counter>> counters_;
  std::map<std::string, Entry<Gauge>> gauges_;
  std::map<std::string, Entry<Histogram>> histograms_;
};

/// The process-wide default registry (what instrumented library code uses).
Registry& registry() noexcept;

}  // namespace real

// ---------------------------------------------------------------------------
// No-op twins: empty types with identical signatures. Everything inlines
// to nothing; tests assert std::is_empty on each.
// ---------------------------------------------------------------------------
namespace noop {

struct Counter {
  void inc(std::uint64_t = 1) const noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
  void reset() const noexcept {}
};

struct Gauge {
  void set(double) const noexcept {}
  void add(double) const noexcept {}
  void update_max(double) const noexcept {}
  [[nodiscard]] double value() const noexcept { return 0.0; }
  void reset() const noexcept {}
};

struct Histogram {
  Histogram() = default;
  Histogram(double, double, std::size_t) {}
  void observe(double) const noexcept {}
  [[nodiscard]] double lo() const noexcept { return 0.0; }
  [[nodiscard]] double hi() const noexcept { return 1.0; }
  [[nodiscard]] std::size_t bins() const noexcept { return 1; }
  [[nodiscard]] HistogramSample sample() const { return {}; }
  [[nodiscard]] util::Histogram snapshot() const {
    return util::Histogram(0.0, 1.0, 1);
  }
  void reset() const noexcept {}
};

struct Registry {
  Counter& counter(std::string_view, const Labels& = {}) const noexcept {
    static Counter c;
    return c;
  }
  Gauge& gauge(std::string_view, const Labels& = {}) const noexcept {
    static Gauge g;
    return g;
  }
  Histogram& histogram(std::string_view, double, double, std::size_t,
                       const Labels& = {}) const noexcept {
    static Histogram h;
    return h;
  }
  [[nodiscard]] Snapshot snapshot() const { return {}; }
  void reset() const noexcept {}
};

inline Registry& registry() noexcept {
  static Registry r;
  return r;
}

}  // namespace noop

// ---------------------------------------------------------------------------
// Configuration switch.
// ---------------------------------------------------------------------------
#if FTL_OBS_ENABLED
inline constexpr bool kEnabled = true;
using Counter = real::Counter;
using Gauge = real::Gauge;
using Histogram = real::Histogram;
using Registry = real::Registry;
inline Registry& registry() noexcept { return real::registry(); }
#else
inline constexpr bool kEnabled = false;
using Counter = noop::Counter;
using Gauge = noop::Gauge;
using Histogram = noop::Histogram;
using Registry = noop::Registry;
inline Registry& registry() noexcept { return noop::registry(); }
#endif

}  // namespace ftl::obs

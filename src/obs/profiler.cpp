#include "obs/profiler.hpp"

#include <cxxabi.h>
#include <dlfcn.h>
#include <elf.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <new>
#include <set>
#include <thread>
#include <utility>

#include "obs/json.hpp"

namespace ftl::obs {

// ---------------------------------------------------------------------------
// Sample arena + SIGPROF handler.
//
// Memory layout: one arena of `capacity` fixed-stride slots. A slot is a
// SlotHeader (ready flag, depth, stage tag) followed by `max_depth` pcs.
// Threads claim kChunkSamples-slot chunks from a global cursor with one
// fetch_add and then fill their chunk privately, so concurrent handlers
// never contend on anything but that occasional fetch_add. A sample
// becomes visible to readers only after its release-store of `ready`; the
// reader side (samples()) acquires it, so partially written slots are
// never observed. The arena is never freed while a handler could still be
// in flight: start() spins on the in-flight counter before reallocating,
// and the session epoch invalidates every thread's cached chunk.
// ---------------------------------------------------------------------------

namespace real {

namespace {

constexpr std::size_t kChunkSamples = 256;
/// backtrace() frames belonging to the profiler itself: the handler and
/// the kernel signal trampoline. The unwinder crosses the signal frame, so
/// after the skip the first frame is the interrupted pc.
constexpr int kSkipFrames = 2;

struct SlotHeader {
  std::atomic<std::uint32_t> ready;
  std::uint32_t depth;
  const char* stage;
};

std::byte* g_arena = nullptr;  // lifecycle under g_lifecycle_mu
std::size_t g_capacity = 0;
std::size_t g_stride = 0;
std::size_t g_depth_cap = 0;

std::atomic<std::size_t> g_cursor{0};   // next unclaimed slot
std::atomic<std::uint64_t> g_epoch{0};  // bumped per start(); invalidates chunks
std::atomic<std::uint64_t> g_published{0};
std::atomic<std::uint64_t> g_dropped{0};
std::atomic<bool> g_armed{false};
std::atomic<int> g_inflight{0};

timer_t g_timer;
bool g_timer_valid = false;
bool g_itimer_valid = false;
bool g_handler_installed = false;

std::mutex g_lifecycle_mu;  // start/stop/samples (never the handler)

struct ThreadChunk {
  std::uint64_t epoch = 0;
  std::size_t next = 0;
  std::size_t end = 0;
};
thread_local ThreadChunk t_chunk;
thread_local const char* t_stage = nullptr;

SlotHeader* slot_at(std::size_t i) noexcept {
  return reinterpret_cast<SlotHeader*>(g_arena + i * g_stride);
}

std::uintptr_t* slot_pcs(SlotHeader* s) noexcept {
  return reinterpret_cast<std::uintptr_t*>(reinterpret_cast<std::byte*>(s) +
                                           sizeof(SlotHeader));
}

/// Async-signal-safe: atomics, thread-local POD, and backtrace() (warmed
/// up in start() so its one-time libgcc load never happens here). No
/// malloc, no locks, errno preserved.
void sigprof_handler(int, siginfo_t*, void*) {
  if (!g_armed.load(std::memory_order_acquire)) return;
  g_inflight.fetch_add(1, std::memory_order_acq_rel);
  // Re-check under the in-flight guard: stop()/start() wait for the
  // counter to drain before touching the arena, so from here on the
  // arena pointers are stable even if the session is being torn down.
  if (!g_armed.load(std::memory_order_acquire)) {
    g_inflight.fetch_sub(1, std::memory_order_release);
    return;
  }
  const int saved_errno = errno;

  ThreadChunk& tc = t_chunk;
  const std::uint64_t ep = g_epoch.load(std::memory_order_relaxed);
  if (tc.epoch != ep) {
    tc.epoch = ep;
    tc.next = tc.end = 0;
  }
  if (tc.next == tc.end) {
    const std::size_t base =
        g_cursor.fetch_add(kChunkSamples, std::memory_order_relaxed);
    if (base >= g_capacity) {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
      errno = saved_errno;
      g_inflight.fetch_sub(1, std::memory_order_release);
      return;
    }
    tc.next = base;
    tc.end = std::min(base + kChunkSamples, g_capacity);
  }

  void* frames[kProfilerMaxDepth + kSkipFrames];
  const int n =
      ::backtrace(frames, static_cast<int>(g_depth_cap) + kSkipFrames);
  SlotHeader* s = slot_at(tc.next);
  std::uintptr_t* pcs = slot_pcs(s);
  std::uint32_t depth = 0;
  for (int i = std::min(n, kSkipFrames);
       i < n && depth < static_cast<std::uint32_t>(g_depth_cap); ++i) {
    pcs[depth++] = reinterpret_cast<std::uintptr_t>(frames[i]);
  }
  s->depth = depth;
  s->stage = t_stage;
  s->ready.store(1, std::memory_order_release);
  ++tc.next;
  g_published.fetch_add(1, std::memory_order_relaxed);
  errno = saved_errno;
  g_inflight.fetch_sub(1, std::memory_order_release);
}

/// Spin until no handler is between the in-flight increments. Called with
/// g_armed already false (or before arming), so the wait is bounded by one
/// handler execution per thread.
void drain_inflight() noexcept {
  while (g_inflight.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
}

void disarm_timer() noexcept {
  if (g_timer_valid) {
    timer_delete(g_timer);
    g_timer_valid = false;
  }
  if (g_itimer_valid) {
    itimerval zero{};
    setitimer(ITIMER_PROF, &zero, nullptr);
    g_itimer_valid = false;
  }
}

bool arm_timer(int hz) noexcept {
  // Preferred: a POSIX timer on the process CPU clock. Linux delivers the
  // expiry signal to a currently running thread, so samples land on the
  // threads actually burning CPU.
  sigevent sev{};
  sev.sigev_notify = SIGEV_SIGNAL;
  sev.sigev_signo = SIGPROF;
  const long long period_ns = 1000000000LL / hz;
  if (timer_create(CLOCK_PROCESS_CPUTIME_ID, &sev, &g_timer) == 0) {
    itimerspec its{};
    its.it_interval.tv_sec = static_cast<time_t>(period_ns / 1000000000LL);
    its.it_interval.tv_nsec = static_cast<long>(period_ns % 1000000000LL);
    its.it_value = its.it_interval;
    if (timer_settime(g_timer, 0, &its, nullptr) == 0) {
      g_timer_valid = true;
      return true;
    }
    timer_delete(g_timer);
  }
  // Fallback: the classic profiling interval timer (same CPU-clock
  // semantics, microsecond granularity).
  itimerval itv{};
  const long long period_us = std::max(1LL, 1000000LL / hz);
  itv.it_interval.tv_sec = static_cast<time_t>(period_us / 1000000LL);
  itv.it_interval.tv_usec = static_cast<suseconds_t>(period_us % 1000000LL);
  itv.it_value = itv.it_interval;
  if (setitimer(ITIMER_PROF, &itv, nullptr) == 0) {
    g_itimer_valid = true;
    return true;
  }
  return false;
}

}  // namespace

bool Profiler::start(const ProfilerOptions& opts) {
  const std::lock_guard<std::mutex> lock(g_lifecycle_mu);
  if (g_armed.load(std::memory_order_relaxed)) return false;
  drain_inflight();  // stragglers from the previous session

  ProfilerOptions o = opts;
  o.hz = std::clamp(o.hz, 1, 10000);
  o.max_depth = std::clamp(o.max_depth, std::size_t{4}, kProfilerMaxDepth);
  o.capacity = std::clamp(o.capacity, kChunkSamples, std::size_t{1} << 22);

  const std::size_t stride =
      (sizeof(SlotHeader) + o.max_depth * sizeof(std::uintptr_t) + 7u) & ~7u;
  if (g_arena == nullptr || g_stride != stride || g_capacity != o.capacity) {
    delete[] g_arena;
    g_arena = new (std::nothrow) std::byte[stride * o.capacity];
    if (g_arena == nullptr) {
      g_capacity = 0;
      return false;
    }
    g_stride = stride;
    g_capacity = o.capacity;
  }
  g_depth_cap = o.max_depth;
  for (std::size_t i = 0; i < g_capacity; ++i) {
    ::new (g_arena + i * g_stride) SlotHeader{{0}, 0, nullptr};
  }
  g_cursor.store(0, std::memory_order_relaxed);
  g_published.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  g_epoch.fetch_add(1, std::memory_order_relaxed);
  opts_ = o;

  // Warm up the unwinder: backtrace()'s first call loads libgcc, which
  // mallocs and takes the loader lock — do it here, never in the handler.
  void* warm[4];
  (void)::backtrace(warm, 4);

  if (!g_handler_installed) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_sigaction = &sigprof_handler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    if (sigaction(SIGPROF, &sa, nullptr) != 0) return false;
    // Left installed for the process lifetime: restoring the previous
    // disposition at stop() could race a queued SIGPROF into SIG_DFL
    // (which terminates). Disarmed, the handler is one atomic load.
    g_handler_installed = true;
  }

  g_armed.store(true, std::memory_order_release);
  if (!arm_timer(o.hz)) {
    g_armed.store(false, std::memory_order_release);
    return false;
  }
  return true;
}

void Profiler::stop() {
  const std::lock_guard<std::mutex> lock(g_lifecycle_mu);
  if (!g_armed.exchange(false, std::memory_order_acq_rel)) return;
  disarm_timer();
  drain_inflight();
}

bool Profiler::running() const noexcept {
  return g_armed.load(std::memory_order_relaxed);
}

std::uint64_t Profiler::sample_count() const noexcept {
  return g_published.load(std::memory_order_relaxed);
}

std::uint64_t Profiler::dropped() const noexcept {
  return g_dropped.load(std::memory_order_relaxed);
}

std::vector<ProfileSample> Profiler::samples() const {
  const std::lock_guard<std::mutex> lock(g_lifecycle_mu);
  std::vector<ProfileSample> out;
  if (g_arena == nullptr) return out;
  const std::size_t claimed =
      std::min(g_cursor.load(std::memory_order_relaxed), g_capacity);
  out.reserve(g_published.load(std::memory_order_relaxed));
  for (std::size_t i = 0; i < claimed; ++i) {
    SlotHeader* s = slot_at(i);
    if (s->ready.load(std::memory_order_acquire) != 1) continue;
    const std::uint32_t depth = std::min(
        s->depth, static_cast<std::uint32_t>(g_depth_cap));
    if (depth == 0) continue;
    ProfileSample ps;
    ps.stage = s->stage;
    const std::uintptr_t* pcs = slot_pcs(s);
    ps.pcs.assign(pcs, pcs + depth);
    out.push_back(std::move(ps));
  }
  return out;
}

std::string Profiler::folded() const {
  return fold_profile(samples(), [](std::uintptr_t pc) {
    return symbolize_pc(pc);
  });
}

std::string Profiler::speedscope(std::string_view name) const {
  return speedscope_profile(
      samples(), [](std::uintptr_t pc) { return symbolize_pc(pc); }, name);
}

Profiler& profiler() {
  static Profiler p;
  return p;
}

const char* set_profile_stage(const char* stage) noexcept {
  const char* prev = t_stage;
  t_stage = stage;
  return prev;
}

const char* profile_stage() noexcept { return t_stage; }

}  // namespace real

// ---------------------------------------------------------------------------
// Symbolization.
// ---------------------------------------------------------------------------

namespace {

/// Function symbols of the main executable, read from /proc/self/exe's
/// .symtab + .dynsym. This is what resolves internal-linkage frames
/// (anonymous namespaces, lambdas, file-static helpers) that dladdr cannot
/// see — and *misattributes* to the nearest exported symbol — without
/// requiring -rdynamic. Built once, lazily, at export time.
class ElfSymtab {
 public:
  static const ElfSymtab& instance() {
    static ElfSymtab tab;
    return tab;
  }

  /// The main module's load base (what dladdr reports as dli_fbase for
  /// main-binary addresses); nullptr when detection failed.
  [[nodiscard]] const void* main_base() const noexcept { return base_; }

  /// Mangled name of the function covering `pc`, or nullptr.
  [[nodiscard]] const char* lookup(std::uintptr_t pc) const noexcept {
    if (syms_.empty()) return nullptr;
    const std::uintptr_t va = pc - bias_;
    auto it = std::upper_bound(
        syms_.begin(), syms_.end(), va,
        [](std::uintptr_t v, const Sym& s) { return v < s.addr; });
    if (it == syms_.begin()) return nullptr;
    --it;
    if (va < it->addr || va >= it->end) return nullptr;
    return names_[it->name].c_str();
  }

 private:
  struct Sym {
    std::uintptr_t addr;
    std::uintptr_t end;
    std::size_t name;
  };

  ElfSymtab() {
    // Anchor: an address known to live in the main module, used both to
    // learn the load base and to reject non-main-module lookups.
    Dl_info info{};
    if (dladdr(reinterpret_cast<void*>(&real::set_profile_stage), &info) != 0)
      base_ = info.dli_fbase;

    std::ifstream in("/proc/self/exe", std::ios::binary);
    if (!in) return;
    std::vector<char> image((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    if (image.size() < sizeof(Elf64_Ehdr)) return;
    const auto* ehdr = reinterpret_cast<const Elf64_Ehdr*>(image.data());
    if (std::memcmp(ehdr->e_ident, ELFMAG, SELFMAG) != 0 ||
        ehdr->e_ident[EI_CLASS] != ELFCLASS64)
      return;
    // ET_DYN (PIE) symbols are load-base relative; ET_EXEC are absolute.
    bias_ = ehdr->e_type == ET_DYN
                ? reinterpret_cast<std::uintptr_t>(base_)
                : 0;
    if (ehdr->e_shoff == 0 ||
        ehdr->e_shoff + std::uint64_t{ehdr->e_shnum} * ehdr->e_shentsize >
            image.size())
      return;
    const auto shdr_at = [&](std::size_t i) {
      return reinterpret_cast<const Elf64_Shdr*>(
          image.data() + ehdr->e_shoff + i * ehdr->e_shentsize);
    };
    for (std::size_t si = 0; si < ehdr->e_shnum; ++si) {
      const Elf64_Shdr* sh = shdr_at(si);
      if (sh->sh_type != SHT_SYMTAB && sh->sh_type != SHT_DYNSYM) continue;
      if (sh->sh_link >= ehdr->e_shnum) continue;
      const Elf64_Shdr* str = shdr_at(sh->sh_link);
      if (str->sh_offset + str->sh_size > image.size() ||
          sh->sh_offset + sh->sh_size > image.size())
        continue;
      const char* strtab = image.data() + str->sh_offset;
      const std::size_t nsyms = sh->sh_size / sizeof(Elf64_Sym);
      for (std::size_t i = 0; i < nsyms; ++i) {
        const auto* sym = reinterpret_cast<const Elf64_Sym*>(
            image.data() + sh->sh_offset + i * sizeof(Elf64_Sym));
        if (ELF64_ST_TYPE(sym->st_info) != STT_FUNC || sym->st_value == 0)
          continue;
        if (sym->st_name >= str->sh_size) continue;
        const char* name = strtab + sym->st_name;
        if (*name == '\0') continue;
        Sym s;
        s.addr = sym->st_value;
        s.end = sym->st_value + std::max<std::uint64_t>(sym->st_size, 1);
        s.name = names_.size();
        names_.emplace_back(name);
        syms_.push_back(s);
      }
    }
    std::sort(syms_.begin(), syms_.end(),
              [](const Sym& a, const Sym& b) { return a.addr < b.addr; });
    // Zero-size symbols (assembly, some PLT stubs) extend to the next
    // symbol's start so lookups inside them still resolve.
    for (std::size_t i = 0; i + 1 < syms_.size(); ++i) {
      if (syms_[i].end <= syms_[i].addr + 1)
        syms_[i].end = std::max(syms_[i].end, syms_[i + 1].addr);
    }
  }

  const void* base_ = nullptr;
  std::uintptr_t bias_ = 0;
  std::vector<Sym> syms_;
  std::vector<std::string> names_;
};

std::string demangled(const char* name) {
  int status = 0;
  char* out = abi::__cxa_demangle(name, nullptr, nullptr, &status);
  if (status == 0 && out != nullptr) {
    std::string result(out);
    std::free(out);
    return result;
  }
  std::free(out);
  return name;
}

std::string module_basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

std::string hex_pc(std::uintptr_t pc) {
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(pc));
  return buf;
}

/// Folded-format hygiene: ';' is the frame separator and newline the line
/// separator, so neither may appear inside a frame name.
std::string sanitize_frame(std::string name) {
  for (char& c : name) {
    if (c == ';') c = ':';
    if (c == '\n' || c == '\r') c = ' ';
  }
  return name;
}

/// Root-first symbolized frame names for one sample. Non-leaf pcs are
/// return addresses: symbolize at pc-1 so the frame names the call site.
std::vector<std::string> frame_names(const ProfileSample& s,
                                     const SymbolizeFn& symbolize,
                                     std::map<std::uintptr_t, std::string>&
                                         cache) {
  std::vector<std::string> names;
  names.reserve(s.pcs.size() + 1);
  if (s.stage != nullptr) {
    names.push_back(sanitize_frame(std::string("stage:") + s.stage));
  }
  for (std::size_t i = s.pcs.size(); i-- > 0;) {
    const bool leaf = i == 0;  // pcs are leaf-first
    const std::uintptr_t addr = leaf ? s.pcs[i] : s.pcs[i] - 1;
    auto it = cache.find(addr);
    if (it == cache.end()) {
      it = cache.emplace(addr, sanitize_frame(symbolize(addr))).first;
    }
    names.push_back(it->second);
  }
  return names;
}

std::map<std::string, std::uint64_t> aggregate_folded(
    const std::vector<ProfileSample>& samples, const SymbolizeFn& symbolize) {
  std::map<std::string, std::uint64_t> stacks;
  std::map<std::uintptr_t, std::string> cache;
  for (const ProfileSample& s : samples) {
    if (s.pcs.empty()) continue;
    const std::vector<std::string> names = frame_names(s, symbolize, cache);
    std::string key;
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i > 0) key += ';';
      key += names[i];
    }
    ++stacks[key];
  }
  return stacks;
}

}  // namespace

std::string symbolize_pc(std::uintptr_t pc) {
  const ElfSymtab& tab = ElfSymtab::instance();
  Dl_info info{};
  if (dladdr(reinterpret_cast<void*>(pc), &info) != 0) {
    if (info.dli_fbase == tab.main_base()) {
      // Main binary: trust our own symtab (dladdr only sees the dynamic
      // table and would blame the nearest *exported* symbol).
      if (const char* name = tab.lookup(pc)) return demangled(name);
      if (info.dli_sname != nullptr) return demangled(info.dli_sname);
    } else if (info.dli_sname != nullptr) {
      return demangled(info.dli_sname);
    }
    if (info.dli_fname != nullptr && *info.dli_fname != '\0') {
      return "[" + module_basename(info.dli_fname) + "]";
    }
  } else if (const char* name = tab.lookup(pc)) {
    return demangled(name);
  }
  return hex_pc(pc);
}

std::string fold_profile(const std::vector<ProfileSample>& samples,
                         const SymbolizeFn& symbolize) {
  std::string out;
  for (const auto& [stack, count] : aggregate_folded(samples, symbolize)) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::string speedscope_profile(const std::vector<ProfileSample>& samples,
                               const SymbolizeFn& symbolize,
                               std::string_view name) {
  const std::map<std::string, std::uint64_t> stacks =
      aggregate_folded(samples, symbolize);

  // Shared frame table in sorted order; per-stack frame-index lists keyed
  // by the folded line so the sample order is deterministic too.
  std::set<std::string> frame_set;
  for (const auto& [stack, count] : stacks) {
    std::size_t begin = 0;
    while (begin <= stack.size()) {
      const std::size_t semi = stack.find(';', begin);
      const std::size_t end = semi == std::string::npos ? stack.size() : semi;
      frame_set.insert(stack.substr(begin, end - begin));
      if (semi == std::string::npos) break;
      begin = semi + 1;
    }
  }
  std::map<std::string, std::size_t> frame_index;
  std::vector<const std::string*> frames;
  for (const std::string& f : frame_set) {
    frame_index.emplace(f, frames.size());
    frames.push_back(&f);
  }

  std::uint64_t total = 0;
  for (const auto& [stack, count] : stacks) total += count;

  json::Writer w;
  w.begin_object();
  w.key("$schema");
  w.value("https://www.speedscope.app/file-format-schema.json");
  w.key("exporter");
  w.value("ftl-obs-profiler");
  w.key("name");
  w.value(std::string(name));
  w.key("shared");
  w.begin_object();
  w.key("frames");
  w.begin_array();
  for (const std::string* f : frames) {
    w.begin_object();
    w.key("name");
    w.value(*f);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("profiles");
  w.begin_array();
  w.begin_object();
  w.key("type");
  w.value("sampled");
  w.key("name");
  w.value(std::string(name));
  w.key("unit");
  w.value("none");
  w.key("startValue");
  w.value(std::uint64_t{0});
  w.key("endValue");
  w.value(total);
  w.key("samples");
  w.begin_array();
  for (const auto& [stack, count] : stacks) {
    w.begin_array();
    std::size_t begin = 0;
    while (begin <= stack.size()) {
      const std::size_t semi = stack.find(';', begin);
      const std::size_t end = semi == std::string::npos ? stack.size() : semi;
      w.value(static_cast<std::uint64_t>(
          frame_index.at(stack.substr(begin, end - begin))));
      if (semi == std::string::npos) break;
      begin = semi + 1;
    }
    w.end_array();
  }
  w.end_array();
  w.key("weights");
  w.begin_array();
  for (const auto& [stack, count] : stacks) w.value(count);
  w.end_array();
  w.end_object();
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace ftl::obs

#include "obs/trace.hpp"

#include <fstream>
#include <functional>
#include <thread>

#include "obs/json.hpp"
#include "obs/spanctx.hpp"

namespace ftl::obs::real {

namespace {

std::uint64_t this_tid() {
  // Stable per-thread small-ish id; Chrome only needs it to separate rows.
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffffff;
}

}  // namespace

void Tracer::start() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  t0_ = std::chrono::steady_clock::now();
  active_.store(true, std::memory_order_relaxed);
}

void Tracer::stop() { active_.store(false, std::memory_order_relaxed); }

double Tracer::now_us() const {
  if (t0_ == std::chrono::steady_clock::time_point{}) return 0.0;
  const auto dt = std::chrono::steady_clock::now() - t0_;
  return std::chrono::duration<double, std::micro>(dt).count();
}

void Tracer::record_complete(const char* name, const char* cat, double ts_us,
                             double dur_us) {
  if (!active()) return;
  const std::uint64_t tid = this_tid();
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{name, cat, 'X', ts_us, dur_us, tid});
}

void Tracer::record_instant(const char* name, const char* cat) {
  if (!active()) return;
  const std::uint64_t tid = this_tid();
  const double ts = now_us();
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{name, cat, 'i', ts, 0.0, tid});
}

void Tracer::record_span(const char* name, const char* cat, double ts_us,
                         double dur_us, std::uint64_t trace_id,
                         std::uint64_t span_id,
                         std::uint64_t parent_span_id) {
  if (!active()) return;
  const std::uint64_t tid = this_tid();
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{name, cat, 'X', ts_us, dur_us, tid, trace_id,
                          span_id, parent_span_id, nullptr});
}

void Tracer::record_instant_tagged(const char* name, const char* cat,
                                   std::uint64_t trace_id,
                                   const char* stage) {
  if (!active()) return;
  const std::uint64_t tid = this_tid();
  const double ts = now_us();
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{name, cat, 'i', ts, 0.0, tid, trace_id, 0, 0,
                          stage});
}

double Tracer::ts_us(std::chrono::steady_clock::time_point tp) const {
  if (t0_ == std::chrono::steady_clock::time_point{}) return 0.0;
  return std::chrono::duration<double, std::micro>(tp - t0_).count();
}

std::uint64_t Tracer::t0_steady_ns() const {
  if (t0_ == std::chrono::steady_clock::time_point{}) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          t0_.time_since_epoch())
          .count());
}

std::size_t Tracer::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string Tracer::json() const {
  json::Writer w;
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ms");
  // The steady-clock position of start(), as a string (a u64 of
  // nanoseconds can exceed the double-exact integer range). trace-merge
  // uses it to re-base two same-host files onto one timeline.
  w.key("otherData");
  w.begin_object();
  w.key("t0_steady_ns");
  w.value(std::to_string(t0_steady_ns()));
  w.end_object();
  w.key("traceEvents");
  w.begin_array();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const Event& e : events_) {
      w.begin_object();
      w.key("name");
      w.value(e.name);
      w.key("cat");
      w.value(e.cat);
      w.key("ph");
      w.value(std::string_view(&e.phase, 1));
      w.key("ts");
      w.value(e.ts_us);
      if (e.phase == 'X') {
        w.key("dur");
        w.value(e.dur_us);
      } else {
        w.key("s");
        w.value("t");  // instant scope: thread
      }
      w.key("pid");
      w.value(1);
      w.key("tid");
      w.value(e.tid);
      if (e.trace_id != 0 || e.stage != nullptr) {
        w.key("args");
        w.begin_object();
        if (e.trace_id != 0) {
          w.key("trace_id");
          w.value(trace_id_hex(e.trace_id));
          if (e.span_id != 0) {
            w.key("span_id");
            w.value(trace_id_hex(e.span_id));
          }
          if (e.parent_span_id != 0) {
            w.key("parent_span_id");
            w.value(trace_id_hex(e.parent_span_id));
          }
        }
        if (e.stage != nullptr) {
          w.key("stage");
          w.value(e.stage);
        }
        w.end_object();
      }
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  return w.take();
}

bool Tracer::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << json() << '\n';
  return static_cast<bool>(out);
}

Tracer& tracer() noexcept {
  static Tracer t;
  return t;
}

}  // namespace ftl::obs::real

#include "obs/trace.hpp"

#include <fstream>
#include <functional>
#include <thread>

#include "obs/json.hpp"

namespace ftl::obs::real {

namespace {

std::uint64_t this_tid() {
  // Stable per-thread small-ish id; Chrome only needs it to separate rows.
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffffff;
}

}  // namespace

void Tracer::start() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  t0_ = std::chrono::steady_clock::now();
  active_.store(true, std::memory_order_relaxed);
}

void Tracer::stop() { active_.store(false, std::memory_order_relaxed); }

double Tracer::now_us() const {
  if (t0_ == std::chrono::steady_clock::time_point{}) return 0.0;
  const auto dt = std::chrono::steady_clock::now() - t0_;
  return std::chrono::duration<double, std::micro>(dt).count();
}

void Tracer::record_complete(const char* name, const char* cat, double ts_us,
                             double dur_us) {
  if (!active()) return;
  const std::uint64_t tid = this_tid();
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{name, cat, 'X', ts_us, dur_us, tid});
}

void Tracer::record_instant(const char* name, const char* cat) {
  if (!active()) return;
  const std::uint64_t tid = this_tid();
  const double ts = now_us();
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{name, cat, 'i', ts, 0.0, tid});
}

std::size_t Tracer::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string Tracer::json() const {
  json::Writer w;
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("traceEvents");
  w.begin_array();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const Event& e : events_) {
      w.begin_object();
      w.key("name");
      w.value(e.name);
      w.key("cat");
      w.value(e.cat);
      w.key("ph");
      w.value(std::string_view(&e.phase, 1));
      w.key("ts");
      w.value(e.ts_us);
      if (e.phase == 'X') {
        w.key("dur");
        w.value(e.dur_us);
      } else {
        w.key("s");
        w.value("t");  // instant scope: thread
      }
      w.key("pid");
      w.value(1);
      w.key("tid");
      w.value(e.tid);
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
  return w.take();
}

bool Tracer::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << json() << '\n';
  return static_cast<bool>(out);
}

Tracer& tracer() noexcept {
  static Tracer t;
  return t;
}

}  // namespace ftl::obs::real

#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/assert.hpp"

namespace ftl::obs::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Writer::prologue() {
  if (stack_.empty()) return;
  if (stack_.back() == Ctx::kObject) {
    // Inside an object every value must have been announced by key(),
    // which already emitted the separator.
    FTL_ASSERT_MSG(pending_key_, "JSON object value written without a key");
    pending_key_ = false;
    return;
  }
  if (!first_.back()) out_ += ',';
  first_.back() = false;
}

void Writer::begin_object() {
  prologue();
  out_ += '{';
  stack_.push_back(Ctx::kObject);
  first_.push_back(true);
}

void Writer::end_object() {
  FTL_ASSERT(!stack_.empty() && stack_.back() == Ctx::kObject);
  FTL_ASSERT_MSG(!pending_key_, "JSON key written without a value");
  stack_.pop_back();
  first_.pop_back();
  out_ += '}';
}

void Writer::begin_array() {
  prologue();
  out_ += '[';
  stack_.push_back(Ctx::kArray);
  first_.push_back(true);
}

void Writer::end_array() {
  FTL_ASSERT(!stack_.empty() && stack_.back() == Ctx::kArray);
  stack_.pop_back();
  first_.pop_back();
  out_ += ']';
}

void Writer::key(std::string_view k) {
  FTL_ASSERT(!stack_.empty() && stack_.back() == Ctx::kObject);
  FTL_ASSERT_MSG(!pending_key_, "two JSON keys in a row");
  if (!first_.back()) out_ += ',';
  first_.back() = false;
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  pending_key_ = true;
}

void Writer::value(std::string_view v) {
  prologue();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
}

void Writer::value(double v) {
  prologue();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no NaN/Inf
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
}

void Writer::value(std::uint64_t v) {
  prologue();
  out_ += std::to_string(v);
}

void Writer::value(std::int64_t v) {
  prologue();
  out_ += std::to_string(v);
}

void Writer::value(bool v) {
  prologue();
  out_ += v ? "true" : "false";
}

void Writer::null() {
  prologue();
  out_ += "null";
}

const Value* Value::find(std::string_view k) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [key, val] : object) {
    if (key == k) return &val;
  }
  return nullptr;
}

namespace {

/// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  std::optional<Value> run() {
    skip_ws();
    Value v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return std::nullopt;  // trailing junk
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(Value& out) {
    if (depth_ > 128) return false;  // pathological nesting
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': out.kind = Value::Kind::kString; return parse_string(out.string);
      case 't':
        out.kind = Value::Kind::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.kind = Value::Kind::kBool;
        out.boolean = false;
        return literal("false");
      case 'n': out.kind = Value::Kind::kNull; return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    out.kind = Value::Kind::kObject;
    ++depth_;
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) { --depth_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.object.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) { --depth_; return true; }
      return false;
    }
  }

  bool parse_array(Value& out) {
    out.kind = Value::Kind::kArray;
    ++depth_;
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) { --depth_; return true; }
    while (true) {
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) { --depth_; return true; }
      return false;
    }
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            // Minimal UTF-8 encoding of the BMP code point; surrogate
            // pairs are passed through as two 3-byte sequences, which is
            // fine for round-tripping our own output (we only emit
            // \u00XX control escapes).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return false;
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      out += c;
    }
    return false;  // unterminated
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (eat('-')) {}
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (eat('.')) {
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    out.kind = Value::Kind::kNumber;
    out.number = std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(),
                             nullptr);
    return true;
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  std::string_view s_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text) { return Parser(text).run(); }

}  // namespace ftl::obs::json

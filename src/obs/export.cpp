#include "obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <utility>
#include <vector>

namespace ftl::obs {

namespace {

/// Locale-independent double formatting matching the JSON writer; the
/// exposition format spells non-finite values +Inf / -Inf / NaN.
std::string fmt_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void append_labels(std::string& out, const Labels& labels,
                   const std::pair<std::string, std::string>* extra = nullptr) {
  if (labels.empty() && extra == nullptr) return;
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += prometheus_name(k, /*prefix=*/"");
    out += "=\"";
    out += prometheus_label_value(v);
    out += '"';
  }
  if (extra != nullptr) {
    if (!first) out += ',';
    out += extra->first;
    out += "=\"";
    out += extra->second;
    out += '"';
  }
  out += '}';
}

/// Help strings keyed by dotted metric name. Process-global so every
/// serialization path (daemon scrapes, --prom-out files, ftlbench export)
/// sees the same documentation.
std::mutex& help_mu() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, std::string, std::less<>>& help_registry() {
  static std::map<std::string, std::string, std::less<>> reg;
  return reg;
}

/// Emits the family header — `# HELP` (when registered) then `# TYPE` —
/// the first time a family is seen. Families repeat across label sets
/// (and distinct dotted names can collapse to the same sanitised family),
/// so dedup by emitted name.
void family_header(std::string& out, std::set<std::string>& emitted,
                   const std::string& family, const char* kind,
                   std::string_view dotted_name) {
  if (!emitted.insert(family).second) return;
  const std::string help = metric_help(dotted_name);
  if (!help.empty()) {
    out += "# HELP ";
    out += family;
    out += ' ';
    out += prometheus_help_text(help);
    out += '\n';
  }
  out += "# TYPE ";
  out += family;
  out += ' ';
  out += kind;
  out += '\n';
}

void sample_line(std::string& out, const std::string& name,
                 const std::string& value, const ExportOptions& opts) {
  out += name;
  out += ' ';
  out += value;
  if (opts.timestamp_ms) {
    out += ' ';
    out += std::to_string(*opts.timestamp_ms);
  }
  out += '\n';
}

}  // namespace

std::string prometheus_name(std::string_view name, std::string_view prefix) {
  std::string out(prefix);
  out.reserve(prefix.size() + name.size());
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (alpha || (digit && !out.empty())) {
      out += c;
    } else if (digit) {
      out += '_';  // a metric name cannot start with a digit
      out += c;
    } else {
      out += '_';
    }
  }
  return out;
}

void set_metric_help(std::string_view dotted_name, std::string_view help) {
  const std::lock_guard<std::mutex> lock(help_mu());
  if (help.empty()) {
    help_registry().erase(std::string(dotted_name));
  } else {
    help_registry().insert_or_assign(std::string(dotted_name),
                                     std::string(help));
  }
}

std::string metric_help(std::string_view dotted_name) {
  const std::lock_guard<std::mutex> lock(help_mu());
  const auto it = help_registry().find(dotted_name);
  return it != help_registry().end() ? it->second : std::string();
}

std::string prometheus_help_text(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prometheus_label_value(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prometheus_text(const Snapshot& snapshot,
                            const ExportOptions& opts) {
  std::string out;
  std::set<std::string> emitted;

  for (const CounterSample& c : snapshot.counters) {
    // Counters carry the conventional `_total` suffix.
    const std::string family = prometheus_name(c.name, opts.prefix) + "_total";
    family_header(out, emitted, family, "counter", c.name);
    std::string line = family;
    append_labels(line, c.labels);
    sample_line(out, line, std::to_string(c.value), opts);
  }

  for (const GaugeSample& g : snapshot.gauges) {
    const std::string family = prometheus_name(g.name, opts.prefix);
    family_header(out, emitted, family, "gauge", g.name);
    std::string line = family;
    append_labels(line, g.labels);
    sample_line(out, line, fmt_double(g.value), opts);
  }

  for (const HistogramSample& h : snapshot.histograms) {
    const std::string family = prometheus_name(h.name, opts.prefix);
    family_header(out, emitted, family, "histogram", h.name);
    const std::size_t bins = h.counts.size();
    const double width =
        bins > 0 ? (h.hi - h.lo) / static_cast<double>(bins) : 0.0;
    // Out-of-range observations are clamped into the edge bins by the
    // registry histogram, so the bin counts already cover every sample and
    // the cumulative buckets sum to the total.
    std::uint64_t cum = 0;
    double approx_sum = 0.0;
    for (std::size_t i = 0; i < bins; ++i) {
      cum += h.counts[i];
      const double edge = h.lo + width * static_cast<double>(i + 1);
      const double center = h.lo + width * (static_cast<double>(i) + 0.5);
      approx_sum += center * static_cast<double>(h.counts[i]);
      const std::pair<std::string, std::string> le{"le", fmt_double(edge)};
      std::string line = family + "_bucket";
      append_labels(line, h.labels, &le);
      sample_line(out, line, std::to_string(cum), opts);
    }
    const std::pair<std::string, std::string> le_inf{"le", "+Inf"};
    std::string inf_line = family + "_bucket";
    append_labels(inf_line, h.labels, &le_inf);
    sample_line(out, inf_line, std::to_string(h.total), opts);

    std::string sum_line = family + "_sum";
    append_labels(sum_line, h.labels);
    sample_line(out, sum_line, fmt_double(approx_sum), opts);

    std::string count_line = family + "_count";
    append_labels(count_line, h.labels);
    sample_line(out, count_line, std::to_string(h.total), opts);
  }

  return out;
}

bool write_prometheus_text(const std::string& path, const Snapshot& snapshot,
                           const ExportOptions& opts) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << prometheus_text(snapshot, opts);
  return static_cast<bool>(out);
}

// ---------------------------------------------------------------------------
// JSON re-parsing.
// ---------------------------------------------------------------------------

namespace {

bool read_labels(const json::Value& v, Labels& out) {
  const json::Value* labels = v.find("labels");
  if (labels == nullptr || !labels->is_object()) return false;
  for (const auto& [k, lv] : labels->object) {
    if (!lv.is_string()) return false;
    out.emplace_back(k, lv.string);
  }
  return true;
}

bool read_string(const json::Value& obj, std::string_view key,
                 std::string& out) {
  const json::Value* v = obj.find(key);
  if (v == nullptr || !v->is_string()) return false;
  out = v->string;
  return true;
}

bool read_number(const json::Value& obj, std::string_view key, double& out) {
  const json::Value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) return false;
  out = v->number;
  return true;
}

}  // namespace

std::optional<Snapshot> snapshot_from_json(const json::Value& metrics) {
  if (!metrics.is_object()) return std::nullopt;
  Snapshot snap;

  const json::Value* counters = metrics.find("counters");
  const json::Value* gauges = metrics.find("gauges");
  const json::Value* histograms = metrics.find("histograms");
  if (counters == nullptr || !counters->is_array() || gauges == nullptr ||
      !gauges->is_array() || histograms == nullptr || !histograms->is_array())
    return std::nullopt;

  for (const json::Value& c : counters->array) {
    CounterSample s;
    double value = 0.0;
    if (!read_string(c, "name", s.name) || !read_labels(c, s.labels) ||
        !read_number(c, "value", value))
      return std::nullopt;
    s.value = static_cast<std::uint64_t>(value);
    snap.counters.push_back(std::move(s));
  }

  for (const json::Value& g : gauges->array) {
    GaugeSample s;
    if (!read_string(g, "name", s.name) || !read_labels(g, s.labels) ||
        !read_number(g, "value", s.value))
      return std::nullopt;
    snap.gauges.push_back(std::move(s));
  }

  for (const json::Value& h : histograms->array) {
    HistogramSample s;
    double underflow = 0.0, overflow = 0.0, total = 0.0;
    if (!read_string(h, "name", s.name) || !read_labels(h, s.labels) ||
        !read_number(h, "lo", s.lo) || !read_number(h, "hi", s.hi) ||
        !read_number(h, "underflow", underflow) ||
        !read_number(h, "overflow", overflow) ||
        !read_number(h, "total", total))
      return std::nullopt;
    const json::Value* counts = h.find("counts");
    if (counts == nullptr || !counts->is_array()) return std::nullopt;
    for (const json::Value& c : counts->array) {
      if (!c.is_number()) return std::nullopt;
      s.counts.push_back(static_cast<std::size_t>(c.number));
    }
    s.underflow = static_cast<std::size_t>(underflow);
    s.overflow = static_cast<std::size_t>(overflow);
    s.total = static_cast<std::size_t>(total);
    snap.histograms.push_back(std::move(s));
  }

  return snap;
}

std::optional<ParsedRunReport> parse_run_report(std::string_view text) {
  const std::optional<json::Value> doc = json::parse(text);
  if (!doc || !doc->is_object()) return std::nullopt;

  const json::Value* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != "ftl.obs.run_report/v1")
    return std::nullopt;

  const json::Value* meta = doc->find("meta");
  if (meta == nullptr || !meta->is_object()) return std::nullopt;

  ParsedRunReport report;
  double seed = 0.0;
  if (!read_string(*meta, "name", report.name) ||
      !read_number(*meta, "seed", seed) ||
      !read_string(*meta, "git_rev", report.git_rev) ||
      !read_number(*meta, "wall_time_s", report.wall_time_s))
    return std::nullopt;
  report.seed = static_cast<std::uint64_t>(seed);
  read_string(*meta, "config", report.config);  // optional
  // cpu_time_s is additive in v1; reports written before it default to 0.
  read_number(*meta, "cpu_time_s", report.cpu_time_s);
  if (const json::Value* e = meta->find("obs_enabled");
      e != nullptr && e->kind == json::Value::Kind::kBool)
    report.obs_enabled = e->boolean;

  const json::Value* metrics = doc->find("metrics");
  if (metrics == nullptr) return std::nullopt;
  std::optional<Snapshot> snap = snapshot_from_json(*metrics);
  if (!snap) return std::nullopt;
  report.metrics = std::move(*snap);
  return report;
}

// ---------------------------------------------------------------------------
// PeriodicSnapshotter.
// ---------------------------------------------------------------------------

PeriodicSnapshotter::PeriodicSnapshotter(std::string path,
                                         std::chrono::milliseconds interval,
                                         Registry* registry)
    : path_(std::move(path)),
      interval_(std::max(interval, std::chrono::milliseconds(1))),
      registry_(registry != nullptr ? registry : &obs::registry()) {}

PeriodicSnapshotter::~PeriodicSnapshotter() { stop(); }

void PeriodicSnapshotter::start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  {
    std::lock_guard<std::mutex> l(mu_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
    start_time_ = std::chrono::steady_clock::now();
  }
  append_snapshot();
  thread_ = std::thread([this] { loop(); });
}

void PeriodicSnapshotter::stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  {
    std::lock_guard<std::mutex> l(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  append_snapshot();
  std::lock_guard<std::mutex> l(mu_);
  running_ = false;
}

bool PeriodicSnapshotter::running() const {
  std::lock_guard<std::mutex> l(mu_);
  return running_;
}

std::uint64_t PeriodicSnapshotter::snapshots_written() const {
  std::lock_guard<std::mutex> l(mu_);
  return written_;
}

bool PeriodicSnapshotter::ok() const {
  std::lock_guard<std::mutex> l(mu_);
  return ok_;
}

void PeriodicSnapshotter::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, interval_, [this] { return stop_requested_; }))
      break;
    lock.unlock();
    append_snapshot();
    lock.lock();
  }
}

void PeriodicSnapshotter::append_snapshot() {
  // Snapshotting the registry takes its own lock; do it outside ours.
  const Snapshot snap = registry_->snapshot();
  const auto now = std::chrono::steady_clock::now();
  const auto unix_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count();

  std::lock_guard<std::mutex> l(mu_);
  json::Writer w;
  w.begin_object();
  w.key("schema");
  w.value("ftl.obs.snapshot/v1");
  w.key("seq");
  w.value(seq_++);
  w.key("t_ms");
  w.value(std::chrono::duration<double, std::milli>(now - start_time_).count());
  w.key("unix_ms");
  w.value(static_cast<std::int64_t>(unix_ms));
  w.key("metrics");
  write_metrics_json(w, snap);
  w.end_object();

  std::ofstream out(path_, std::ios::app);
  if (!out) {
    ok_ = false;
    return;
  }
  out << w.take() << '\n';
  if (!out) {
    ok_ = false;
    return;
  }
  ++written_;
}

}  // namespace ftl::obs

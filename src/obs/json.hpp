// Minimal JSON emitter + parser for the observability subsystem.
//
// The emitter is a streaming writer (explicit begin/end, automatic commas,
// correct string escaping, locale-independent number formatting) used by
// the trace and run-report serializers. The parser is a strict
// recursive-descent reader used by the tests to verify that every emitted
// file is well-formed, and by tooling that wants to introspect a report
// without a third-party JSON dependency.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ftl::obs::json {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).
[[nodiscard]] std::string escape(std::string_view s);

/// Streaming JSON writer. Usage:
///   Writer w;
///   w.begin_object();
///   w.key("seed"); w.value(std::uint64_t{42});
///   w.end_object();
///   std::string out = std::move(w).str();
/// Misuse (value without key inside an object, unbalanced end) asserts.
class Writer {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void null();

  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  enum class Ctx : std::uint8_t { kObject, kArray };
  void prologue();  // comma / nothing, depending on position

  std::string out_;
  std::vector<Ctx> stack_;
  std::vector<bool> first_;     // first element of the innermost container?
  bool pending_key_ = false;    // a key was written, value must follow
};

/// Parsed JSON value. Objects preserve insertion order.
struct Value {
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view k) const;
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
};

/// Strict parse of a complete JSON document (trailing junk rejected).
/// Returns nullopt on any syntax error.
[[nodiscard]] std::optional<Value> parse(std::string_view text);

}  // namespace ftl::obs::json

#include "ftlcoordd/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "ftlcoordd/protocol.hpp"

namespace ftl::coordd {

int listen_tcp(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, backlog) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::uint16_t bound_port(int listen_fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

int connect_tcp(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

int accept_with_timeout(int listen_fd, int timeout_ms) {
  pollfd pfd{listen_fd, POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc == 0) return -1;                          // timeout
  if (rc < 0 || (pfd.revents & (POLLERR | POLLNVAL)) != 0) return -2;
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) return errno == ECONNABORTED ? -1 : -2;
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

bool read_full(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t got = ::read(fd, p, n);
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // EOF
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

bool write_full(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (n > 0) {
    // MSG_NOSIGNAL: a peer that hung up mid-write (scraper timeout, killed
    // client) must surface as EPIPE on this call, not a process-fatal
    // SIGPIPE — the daemon holds no global signal handlers.
    const ssize_t sent = ::send(fd, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

bool write_frame(int fd, const std::vector<std::uint8_t>& payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  if (len > kMaxFrameBytes) return false;
  std::uint8_t hdr[4];
  std::memcpy(hdr, &len, sizeof hdr);
  if (!write_full(fd, hdr, sizeof hdr)) return false;
  return payload.empty() || write_full(fd, payload.data(), payload.size());
}

bool read_frame(int fd, std::vector<std::uint8_t>& payload) {
  std::uint8_t hdr[4];
  if (!read_full(fd, hdr, sizeof hdr)) return false;
  std::uint32_t len = 0;
  std::memcpy(&len, hdr, sizeof len);
  if (len > kMaxFrameBytes) return false;
  payload.resize(len);
  return len == 0 || read_full(fd, payload.data(), len);
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

void shutdown_fd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

}  // namespace ftl::coordd

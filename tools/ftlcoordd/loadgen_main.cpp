// ftlcoordd_loadgen entry point: drive a running daemon with batched
// decide frames from several worker threads and report throughput and
// latency percentiles.
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>

#include "ftlcoordd/loadgen.hpp"
#include "obs/trace.hpp"
#include "util/args.hpp"

namespace {

void print_usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s --port N [flags]\n"
               "  --host H          daemon host (default 127.0.0.1)\n"
               "  --port N          daemon decide/report port (required)\n"
               "  --threads N       worker threads / connections (default 2)\n"
               "  --sources N       daemon source count; worker i drives source i%%N (default 1)\n"
               "  --batch N         decisions per frame (default 512)\n"
               "  --decisions N     total decisions across workers (default 1000000)\n"
               "  --rate HZ         offered decisions/s; 0 = saturation (default 0)\n"
               "  --pipeline N      frames in flight per connection (default 4)\n"
               "  --no-report       skip the final wins/losses report frame\n"
               "  --seed N          trace-id derivation seed (default 42)\n"
               "  --deadline-us US  per-request deadline budget; 0 = none (default 0)\n"
               "  --trace-sample-n N trace 1 of every N batches per worker; 0 = off (default 0)\n"
               "  --trace-out PATH  write a Chrome/Perfetto trace JSON on exit\n",
               prog);
}

}  // namespace

int main(int argc, char** argv) {
  const ftl::util::Args args(argc, argv);
  if (args.has("help") || !args.has("port")) {
    print_usage(args.program().c_str());
    return args.has("help") ? 0 : 1;
  }

  ftl::coordd::LoadgenConfig cfg;
  cfg.host = args.get("host", std::string("127.0.0.1"));
  cfg.port = static_cast<std::uint16_t>(args.get("port", 0LL));
  cfg.threads = args.get("threads", std::size_t{2});
  cfg.sources = args.get("sources", std::size_t{1});
  cfg.batch = args.get("batch", std::size_t{512});
  cfg.decisions = static_cast<std::uint64_t>(args.get("decisions", 1000000LL));
  cfg.rate_hz = args.get("rate", 0.0);
  cfg.pipeline = args.get("pipeline", std::size_t{4});
  cfg.report = !args.has("no-report");
  cfg.seed = static_cast<std::uint64_t>(args.get("seed", 42LL));
  cfg.deadline_us =
      static_cast<std::uint32_t>(args.get("deadline-us", 0LL));
  cfg.trace_sample_n =
      static_cast<std::uint64_t>(args.get("trace-sample-n", 0LL));
  const std::string trace_out = args.get("trace-out", std::string());

  if (!trace_out.empty()) {
    if (cfg.trace_sample_n == 0) cfg.trace_sample_n = 1;
    ftl::obs::tracer().start();
  }

  const auto result = ftl::coordd::run_loadgen(cfg, std::cerr);

  if (!trace_out.empty()) {
    ftl::obs::tracer().stop();
    if (!ftl::obs::tracer().write(trace_out)) {
      std::cerr << "loadgen: FAILED to write trace to " << trace_out << "\n";
      return 1;
    }
    std::cerr << "loadgen: wrote " << ftl::obs::tracer().size()
              << " trace events to " << trace_out << "\n";
  }

  if (!result.ok) {
    std::cerr << "loadgen: FAILED: " << result.error << "\n";
    return 1;
  }
  return 0;
}

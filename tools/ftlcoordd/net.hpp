// Minimal POSIX TCP helpers for the ftlcoordd daemon and its clients:
// loopback-only listeners with ephemeral-port support, full-buffer
// read/write (EINTR-safe), and the u32 length-prefixed frame transport the
// protocol rides on. Everything returns false/-1 on error instead of
// throwing — callers are server loops that must degrade per-connection.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ftl::coordd {

/// Listens on 127.0.0.1:`port` (0 = kernel-assigned ephemeral port).
/// Returns the listening fd, or -1 on failure.
[[nodiscard]] int listen_tcp(std::uint16_t port, int backlog = 128);

/// Port a listening fd is actually bound to (resolves port 0).
[[nodiscard]] std::uint16_t bound_port(int listen_fd);

/// Blocking connect to `host`:`port`; -1 on failure. Sets TCP_NODELAY.
[[nodiscard]] int connect_tcp(const std::string& host, std::uint16_t port);

/// Accepts one connection, waiting at most `timeout_ms` (-1 = forever).
/// Returns the connection fd, -1 on timeout, -2 on listener error/close.
[[nodiscard]] int accept_with_timeout(int listen_fd, int timeout_ms);

/// Reads/writes exactly `n` bytes; false on EOF or error.
[[nodiscard]] bool read_full(int fd, void* buf, std::size_t n);
[[nodiscard]] bool write_full(int fd, const void* buf, std::size_t n);

/// Frame transport: u32 little-endian payload length, then the payload.
/// read_frame enforces the protocol's kMaxFrameBytes cap.
[[nodiscard]] bool write_frame(int fd, const std::vector<std::uint8_t>& payload);
[[nodiscard]] bool read_frame(int fd, std::vector<std::uint8_t>& payload);

void close_fd(int fd);

/// shutdown(2) both directions; unblocks a peer stuck in read_full.
void shutdown_fd(int fd);

}  // namespace ftl::coordd

// ftlcoordd entry point: parse flags, start the daemon, run until a signal
// (or --duration elapses), then write the run report and exit.
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <ctime>

#include <atomic>
#include <chrono>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

#include "ftlcoordd/daemon.hpp"
#include "obs/export.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/args.hpp"

namespace {

std::atomic<bool> g_shutdown{false};

void handle_signal(int) { g_shutdown.store(true); }

void print_usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [flags]\n"
               "  --port N               decide/report port (default 7400; 0 = ephemeral)\n"
               "  --metrics-port N       Prometheus /metrics port (default 7401; 0 = ephemeral);\n"
               "                         also serves GET /profile?seconds=N&hz=H — an on-demand\n"
               "                         CPU profile as FlameGraph folded stacks\n"
               "  --sources N            independent pair sources (default 1)\n"
               "  --slots N              QNIC slots per source (default: qnet memory_slots)\n"
               "  --max-pending N        admission bound on in-flight decisions (default 65536)\n"
               "  --pair-rate HZ         source pair rate, pairs/s (default 1e5)\n"
               "  --fiber-km KM          one-way fiber length (default 0.5)\n"
               "  --visibility V         fresh-pair visibility (default 0.98)\n"
               "  --t1-us US             memory T1 (default 500)\n"
               "  --t2-us US             memory T2 (default 100)\n"
               "  --max-storage-us US    storage cutoff (default 200)\n"
               "  --producer-period-us US pool refill cadence (default 200)\n"
               "  --seed N               RNG seed (default 42)\n"
               "  --duration S           seconds to serve; 0 = until SIGINT/SIGTERM\n"
               "  --metrics-out PATH     write an ftl.obs.run_report/v1 JSON on exit\n"
               "  --snapshot-out PATH    append ftl.obs.snapshot/v1 JSONL while serving\n"
               "  --snapshot-every-ms MS snapshot cadence (default 1000; needs --snapshot-out)\n"
               "  --trace-out PATH       write a Chrome/Perfetto trace JSON on exit\n"
               "  --trace-sample-n N     record stage spans for 1 of every N traced\n"
               "                         batches (default 1; needs --trace-out)\n",
               prog);
}

}  // namespace

int main(int argc, char** argv) {
  const ftl::util::Args args(argc, argv);
  if (args.has("help")) {
    print_usage(args.program().c_str());
    return 0;
  }

  ftl::coordd::DaemonConfig cfg;
  cfg.port = static_cast<std::uint16_t>(args.get("port", 7400LL));
  cfg.metrics_port =
      static_cast<std::uint16_t>(args.get("metrics-port", 7401LL));
  cfg.seed = static_cast<std::uint64_t>(args.get("seed", 42LL));
  cfg.producer_period =
      std::chrono::microseconds(args.get("producer-period-us", 200LL));
  cfg.broker.sources = args.get("sources", std::size_t{1});
  cfg.broker.pool_slots = args.get("slots", std::size_t{0});
  cfg.broker.max_pending = args.get("max-pending", std::size_t{1} << 16);
  cfg.broker.qnet.pair_rate_hz = args.get("pair-rate", 1.0e5);
  cfg.broker.qnet.fiber_km = args.get("fiber-km", 0.5);
  cfg.broker.qnet.source_visibility = args.get("visibility", 0.98);
  cfg.broker.qnet.memory_t1_s = args.get("t1-us", 500.0) * 1e-6;
  cfg.broker.qnet.memory_t2_s = args.get("t2-us", 100.0) * 1e-6;
  cfg.broker.qnet.max_storage_s = args.get("max-storage-us", 200.0) * 1e-6;
  cfg.trace_sample_n =
      static_cast<std::uint64_t>(args.get("trace-sample-n", 1LL));
  const double duration_s = args.get("duration", 0.0);
  const std::string trace_out = args.get("trace-out", std::string());
  if (!trace_out.empty()) ftl::obs::tracer().start();

  ftl::coordd::Daemon daemon(cfg);
  if (!daemon.start()) {
    std::cerr << "ftlcoordd: failed to bind port " << cfg.port << " or "
              << cfg.metrics_port << "\n";
    return 1;
  }
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::cout << "ftlcoordd: serving decide/report on 127.0.0.1:"
            << daemon.port() << ", /metrics on 127.0.0.1:"
            << daemon.metrics_port() << " (" << cfg.broker.sources
            << " sources, pair rate " << cfg.broker.qnet.pair_rate_hz
            << " Hz, storage window " << daemon.broker().max_storage_s() * 1e6
            << " us)" << std::endl;

  std::optional<ftl::obs::PeriodicSnapshotter> snapshotter;
  const std::string snapshot_out = args.get("snapshot-out", std::string());
  if (!snapshot_out.empty()) {
    snapshotter.emplace(
        snapshot_out,
        std::chrono::milliseconds(args.get("snapshot-every-ms", 1000LL)));
    snapshotter->start();
  }

  const auto t0 = std::chrono::steady_clock::now();
  const std::clock_t cpu0 = std::clock();
  while (!g_shutdown.load()) {
    if (duration_s > 0.0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count() >= duration_s) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  daemon.stop();
  if (snapshotter) snapshotter->stop();

  if (!trace_out.empty()) {
    ftl::obs::tracer().stop();
    if (!ftl::obs::tracer().write(trace_out)) {
      std::cerr << "ftlcoordd: FAILED to write trace to " << trace_out << "\n";
      return 1;
    }
    std::cout << "ftlcoordd: wrote " << ftl::obs::tracer().size()
              << " trace events to " << trace_out << std::endl;
  }

  const std::string metrics_out = args.get("metrics-out", std::string());
  if (!metrics_out.empty()) {
    ftl::obs::RunMeta meta;
    meta.name = "ftlcoordd";
    meta.seed = cfg.seed;
    meta.config = "sources=" + std::to_string(cfg.broker.sources) +
                  " pair_rate_hz=" +
                  std::to_string(cfg.broker.qnet.pair_rate_hz);
    meta.wall_time_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    meta.cpu_time_s = static_cast<double>(std::clock() - cpu0) /
                      static_cast<double>(CLOCKS_PER_SEC);
    if (!ftl::obs::write_run_report(metrics_out,
                                    ftl::obs::registry().snapshot(), meta)) {
      std::cerr << "ftlcoordd: FAILED to write run report to " << metrics_out
                << "\n";
      return 1;
    }
  }

  const auto s = daemon.broker().stats();
  std::cout << "ftlcoordd: served " << s.requests << " decisions ("
            << s.hits << " quantum, " << s.fallbacks << " classical, "
            << s.rejected << " rejected); pairs generated "
            << s.pairs_generated << ", delivered " << s.pairs_delivered
            << ", expired " << s.pairs_expired << std::endl;
  return 0;
}

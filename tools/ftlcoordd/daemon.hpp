// ftlcoordd: the long-running coordination daemon.
//
// Serves the decide/report protocol (protocol.hpp) on a loopback TCP port,
// backed by a concurrent qnet::LiveBroker whose producer thread refills the
// per-source pair pools continuously. A second loopback port answers HTTP
// GETs with the Prometheus text exposition of the live metrics registry
// (src/obs/export), so `curl :<metrics_port>/metrics` works against a
// running daemon exactly like a node exporter.
//
// Threading model: one acceptor per port plus one handler thread per
// connection. Clients batch decisions per frame, so connection counts stay
// small (the loadgen uses one connection per worker thread) and the
// thread-per-connection model keeps the hot path free of any cross-
// connection queue; backpressure is enforced by the broker's admission
// bound, not by socket buffering.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "qnet/live_broker.hpp"

namespace ftl::coordd {

struct DaemonConfig {
  /// Decide/report protocol port (0 = ephemeral; query via port()).
  std::uint16_t port = 0;
  /// Prometheus /metrics port (0 = ephemeral; query via metrics_port()).
  std::uint16_t metrics_port = 0;
  qnet::LiveBrokerConfig broker;
  std::uint64_t seed = 42;
  /// Pair-pool refill cadence of the broker's producer thread.
  std::chrono::microseconds producer_period{200};
};

class Daemon {
 public:
  explicit Daemon(const DaemonConfig& cfg);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds both ports, starts the producer and acceptor threads. False
  /// when a port cannot be bound (daemon left stopped).
  [[nodiscard]] bool start();

  /// Stops acceptors, shuts down live connections, joins every thread,
  /// and stops the producer. Idempotent.
  void stop();

  [[nodiscard]] bool running() const { return running_.load(); }
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::uint16_t metrics_port() const { return metrics_port_; }

  [[nodiscard]] qnet::LiveBroker& broker() { return *broker_; }

 private:
  void accept_loop();
  void metrics_loop();
  void handle_connection(int fd);
  void serve_metrics_once(int fd);
  /// Untracks and closes a connection fd (end of its handler).
  void cleanup(int fd);

  /// Registers/unregisters a live connection fd so stop() can unblock it.
  void track_fd(int fd);
  void untrack_fd(int fd);

  DaemonConfig cfg_;
  std::unique_ptr<qnet::LiveBroker> broker_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  int metrics_listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint16_t metrics_port_ = 0;

  std::thread acceptor_;
  std::thread metrics_acceptor_;
  std::mutex conns_mu_;
  std::vector<std::thread> handlers_;  // guarded by conns_mu_
  std::vector<int> live_fds_;          // guarded by conns_mu_

  // Daemon-side serving metrics.
  obs::Counter& m_connections_;
  obs::Counter& m_frames_;
  obs::Counter& m_malformed_;
  obs::Counter& m_scrapes_;
  obs::Histogram& m_decision_latency_;
  obs::Histogram& m_batch_size_;
};

}  // namespace ftl::coordd

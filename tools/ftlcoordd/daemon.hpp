// ftlcoordd: the long-running coordination daemon.
//
// Serves the decide/report protocol (protocol.hpp) on a loopback TCP port,
// backed by a concurrent qnet::LiveBroker whose producer thread refills the
// per-source pair pools continuously. A second loopback port speaks just
// enough HTTP for two resources: GET/HEAD /metrics answers with the
// Prometheus text exposition of the live metrics registry (src/obs/export),
// and GET /profile?seconds=N&hz=H runs the in-process sampling CPU profiler
// for N seconds and answers with FlameGraph folded stacks (one profile
// session at a time; 409 when busy, 501 when built with
// FTL_OBS_ENABLED=OFF). Unknown paths get 404, malformed request lines 400,
// other methods 405 — so `curl :<metrics_port>/metrics` works against a
// running daemon exactly like a node exporter.
//
// Threading model: one acceptor per port plus one handler thread per
// connection. Clients batch decisions per frame, so connection counts stay
// small (the loadgen uses one connection per worker thread) and the
// thread-per-connection model keeps the hot path free of any cross-
// connection queue; backpressure is enforced by the broker's admission
// bound, not by socket buffering.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "ftlcoordd/protocol.hpp"
#include "obs/metrics.hpp"
#include "obs/spanctx.hpp"
#include "qnet/live_broker.hpp"

namespace ftl::coordd {

/// Decision-pipeline stages, in request order. Every batch is timed per
/// stage (cumulative + sliding-window histograms), and a v2 request's
/// deadline miss is attributed to the stage whose boundary first saw the
/// budget exhausted.
enum class Stage : std::uint8_t {
  kSocketRead = 0,   ///< blocked in read_frame (wire + socket wait)
  kAdmission = 1,    ///< decode + admission control
  kPairAcquire = 2,  ///< broker decisions (pair acquire or fallback)
  kDecide = 3,       ///< reply packing + deadline evaluation
  kReplyWrite = 4,   ///< frame write back to the client
};
inline constexpr std::size_t kNumStages = 5;
[[nodiscard]] const char* stage_name(Stage s) noexcept;

struct DaemonConfig {
  /// Decide/report protocol port (0 = ephemeral; query via port()).
  std::uint16_t port = 0;
  /// Prometheus /metrics port (0 = ephemeral; query via metrics_port()).
  std::uint16_t metrics_port = 0;
  qnet::LiveBrokerConfig broker;
  std::uint64_t seed = 42;
  /// Pair-pool refill cadence of the broker's producer thread.
  std::chrono::microseconds producer_period{200};
  /// Record stage spans for 1 of every N *sampled* batches (batches whose
  /// v2 frame carries a nonzero trace id). 0 disables span recording
  /// entirely; stage histograms and deadline counters are always on.
  std::uint64_t trace_sample_n = 1;
};

class Daemon {
 public:
  explicit Daemon(const DaemonConfig& cfg);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds both ports, starts the producer and acceptor threads. False
  /// when a port cannot be bound (daemon left stopped).
  [[nodiscard]] bool start();

  /// Stops acceptors, shuts down live connections, joins every thread,
  /// and stops the producer. Idempotent.
  void stop();

  [[nodiscard]] bool running() const { return running_.load(); }
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::uint16_t metrics_port() const { return metrics_port_; }

  [[nodiscard]] qnet::LiveBroker& broker() { return *broker_; }

 private:
  void accept_loop();
  void metrics_loop();
  void handle_connection(int fd);
  /// Runs one decide batch through the staged pipeline (admission → pair
  /// acquire → decide → reply write), timing each stage, attributing any
  /// deadline miss, and recording sampled stage spans. `t_loop`/`t_read`
  /// bracket the socket-read stage. False when the connection died.
  bool handle_decide(int fd, DecideRequestV2& req,
                     std::chrono::steady_clock::time_point t_loop,
                     std::chrono::steady_clock::time_point t_read,
                     std::vector<DecisionEntry>& entries,
                     std::vector<qnet::LiveBroker::Decision>& decisions);
  /// Serves one HTTP request on the metrics port: routes /metrics and
  /// /profile, answers errors (400/404/405) for everything else.
  void serve_metrics_once(int fd);
  /// GET /profile: runs the sampling profiler for the requested window
  /// (seconds/hz from the query string, clamped) and writes the folded
  /// stacks. 409 when a session is already armed, 501 under obs-OFF.
  void serve_profile_once(int fd, std::string_view query);
  /// Publishes fresh windowed percentile gauges from every stage window.
  void flush_stage_windows();
  /// Untracks and closes a connection fd (end of its handler).
  void cleanup(int fd);

  /// Registers/unregisters a live connection fd so stop() can unblock it.
  void track_fd(int fd);
  void untrack_fd(int fd);

  DaemonConfig cfg_;
  std::unique_ptr<qnet::LiveBroker> broker_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  int metrics_listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint16_t metrics_port_ = 0;

  std::thread acceptor_;
  std::thread metrics_acceptor_;
  std::mutex conns_mu_;
  std::vector<std::thread> handlers_;  // guarded by conns_mu_
  std::vector<int> live_fds_;          // guarded by conns_mu_

  // Daemon-side serving metrics.
  obs::Counter& m_connections_;
  obs::Counter& m_frames_;
  obs::Counter& m_malformed_;
  obs::Counter& m_scrapes_;
  obs::Histogram& m_decision_latency_;
  obs::Histogram& m_batch_size_;

  // Per-stage latency: cumulative histograms (full-run distribution) and
  // sliding windows (recent p50/p95/p99/p999 gauges on /metrics), both
  // labeled stage=<name>. Indexed by Stage.
  obs::Histogram* m_stage_us_[kNumStages];
  std::unique_ptr<obs::SlidingHistogram> m_stage_window_[kNumStages];

  // Deadline accounting (v2 requests with a nonzero budget): batches that
  // met the budget through reply write, and misses attributed to the stage
  // that exhausted it.
  obs::Counter& m_deadline_hit_;
  obs::Counter* m_deadline_miss_[kNumStages];

  // On-demand /profile requests served (any status).
  obs::Counter& m_profile_requests_;

  std::atomic<std::uint64_t> traced_batches_{0};
};

}  // namespace ftl::coordd

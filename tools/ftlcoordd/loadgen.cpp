#include "ftlcoordd/loadgen.hpp"

#include <chrono>
#include <deque>
#include <ostream>
#include <thread>
#include <vector>

#include "ftlcoordd/net.hpp"
#include "obs/spanctx.hpp"
#include "obs/trace.hpp"

namespace ftl::coordd {

namespace {

using Clock = std::chrono::steady_clock;

struct WorkerResult {
  bool ok = true;
  std::string error;
  std::uint64_t decisions_sent = 0;
  std::uint64_t decisions_ok = 0;
  std::uint64_t decisions_rejected = 0;
  std::uint64_t quantum = 0;
  std::uint64_t rounds_won = 0;
  std::uint64_t deadline_missed = 0;
  util::Histogram latency{0.0, 0.05, 500};
};

/// What a worker remembers about each batch in flight: the send time for
/// RTT, and the batch's trace context (zero ids when unsampled) so the
/// client-side batch_rtt span can be recorded when the reply lands.
struct InflightBatch {
  Clock::time_point sent_at;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

void run_worker(const LoadgenConfig& cfg, std::size_t worker_idx,
                std::uint64_t batches, WorkerResult& out) {
  const int fd = connect_tcp(cfg.host, cfg.port);
  if (fd < 0) {
    out.ok = false;
    out.error = "connect failed";
    return;
  }
  const auto source = static_cast<std::uint32_t>(
      cfg.sources == 0 ? 0 : worker_idx % cfg.sources);

  // The batch content is static (alternating inputs): encode once, send
  // many times. Input bits model the environment's game inputs. The frame
  // only needs re-encoding per send when it carries per-send state — a
  // fresh send timestamp (deadline runs) or a sampled trace context.
  DecideRequestV2 req;
  req.source = source;
  req.deadline_us = cfg.deadline_us;
  req.inputs.resize(cfg.batch);
  for (std::size_t i = 0; i < cfg.batch; ++i) {
    req.inputs[i] = static_cast<std::uint8_t>(i & 1u);
  }
  const bool dynamic_frame = cfg.trace_sample_n > 0 || cfg.deadline_us > 0;
  std::vector<std::uint8_t> frame = encode_decide_request_v2(req);

  // Open-loop departure schedule (per worker share of the offered rate),
  // with a bounded pipeline so an overloaded daemon exerts backpressure
  // instead of unbounded client memory.
  const double per_worker_rate =
      cfg.rate_hz > 0.0 ? cfg.rate_hz / static_cast<double>(cfg.threads) : 0.0;
  const auto interval =
      per_worker_rate > 0.0
          ? std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(
                    static_cast<double>(cfg.batch) / per_worker_rate))
          : Clock::duration::zero();

  std::deque<InflightBatch> inflight;
  std::vector<std::uint8_t> payload;
  std::uint64_t sent = 0, received = 0;
  auto next_send = Clock::now();

  const auto read_one = [&]() -> bool {
    if (!read_frame(fd, payload)) {
      out.ok = false;
      out.error = "read failed";
      return false;
    }
    const InflightBatch batch = inflight.front();
    inflight.pop_front();
    const auto rtt =
        std::chrono::duration<double>(Clock::now() - batch.sent_at).count();
    out.latency.add(rtt);
    ++received;
    obs::Tracer& tracer = obs::tracer();
    if (batch.trace_id != 0 && tracer.active()) {
      // The client-side batch span: the daemon's serve_batch span (same
      // trace id, parented to this span id) nests under it after merge.
      tracer.record_span("batch_rtt", "loadgen", tracer.ts_us(batch.sent_at),
                         rtt * 1e6, batch.trace_id, batch.span_id, 0);
    }
    Status status = Status::kMalformed;
    const auto entries = decode_decide_response(payload, &status);
    if (entries) {
      out.decisions_ok += entries->size();
      for (const DecisionEntry& e : *entries) {
        if ((e.flags & DecisionEntry::kQuantumBit) != 0) ++out.quantum;
        if ((e.flags & DecisionEntry::kRoundWonBit) != 0) ++out.rounds_won;
        if ((e.flags & DecisionEntry::kDeadlineMissBit) != 0) {
          ++out.deadline_missed;
        }
      }
    } else if (status == Status::kRejected) {
      // Backpressure: the batch was shed; open loop does not retry.
      out.decisions_rejected += cfg.batch;
    } else {
      out.ok = false;
      out.error = "malformed response";
      return false;
    }
    return true;
  };

  while (received < batches && out.ok) {
    if (sent < batches && inflight.size() < cfg.pipeline) {
      if (per_worker_rate > 0.0) {
        const auto now = Clock::now();
        if (now < next_send) {
          // Not due yet: drain a response if one is owed, else sleep out
          // the schedule gap.
          if (!inflight.empty()) {
            if (!read_one()) break;
            continue;
          }
          std::this_thread::sleep_until(next_send);
        }
        next_send += interval;
      }
      obs::TraceContext ctx;  // zero ids = unsampled
      if (cfg.trace_sample_n > 0 && sent % cfg.trace_sample_n == 0) {
        ctx = obs::TraceContext::derive(cfg.seed, worker_idx, sent);
      }
      if (dynamic_frame) {
        req.trace_id = ctx.trace_id;
        req.parent_span_id = ctx.span_id;
        req.client_send_steady_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now().time_since_epoch())
                .count());
        frame = encode_decide_request_v2(req);
      }
      if (!write_frame(fd, frame)) {
        out.ok = false;
        out.error = "write failed";
        break;
      }
      inflight.push_back({Clock::now(), ctx.trace_id, ctx.span_id});
      ++sent;
      out.decisions_sent += cfg.batch;
      continue;
    }
    if (!read_one()) break;
  }

  if (out.ok && cfg.report) {
    // Close the loop the paper draws: endpoints report game outcomes back.
    ReportRequest rep;
    rep.source = source;
    rep.wins = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(out.rounds_won, 0xffffffffu));
    rep.losses = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(out.decisions_ok - out.rounds_won,
                                0xffffffffu));
    if (!write_frame(fd, encode_report_request(rep)) ||
        !read_frame(fd, payload)) {
      out.ok = false;
      out.error = "report failed";
    }
  }
  close_fd(fd);
}

}  // namespace

LoadgenResult run_loadgen(const LoadgenConfig& cfg, std::ostream& log) {
  LoadgenResult result;
  if (cfg.threads == 0 || cfg.batch == 0) {
    result.error = "threads and batch must be positive";
    return result;
  }
  const std::uint64_t batches_total =
      (cfg.decisions + cfg.batch - 1) / cfg.batch;
  const std::uint64_t per_worker =
      (batches_total + cfg.threads - 1) / cfg.threads;

  std::vector<WorkerResult> workers(cfg.threads);
  std::vector<std::thread> threads;
  threads.reserve(cfg.threads);
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < cfg.threads; ++i) {
    threads.emplace_back(run_worker, std::cref(cfg), i, per_worker,
                         std::ref(workers[i]));
  }
  for (auto& t : threads) t.join();
  result.wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

  std::vector<std::size_t> counts;
  std::size_t underflow = 0, overflow = 0;
  result.ok = true;
  for (const WorkerResult& w : workers) {
    if (!w.ok) {
      result.ok = false;
      result.error = w.error;
    }
    result.decisions_sent += w.decisions_sent;
    result.decisions_ok += w.decisions_ok;
    result.decisions_rejected += w.decisions_rejected;
    result.quantum += w.quantum;
    result.rounds_won += w.rounds_won;
    result.deadline_missed += w.deadline_missed;
    if (counts.empty()) counts.assign(w.latency.counts().size(), 0);
    for (std::size_t b = 0; b < counts.size(); ++b) {
      counts[b] += w.latency.counts()[b];
    }
    underflow += w.latency.underflow();
    overflow += w.latency.overflow();
  }
  if (!counts.empty()) {
    result.latency =
        util::Histogram::from_counts(0.0, 0.05, counts, underflow, overflow);
  }

  // Scrape the daemon's aggregate counters once, over a fresh connection.
  const int fd = connect_tcp(cfg.host, cfg.port);
  if (fd >= 0) {
    std::vector<std::uint8_t> payload;
    if (write_frame(fd, encode_stats_request()) && read_frame(fd, payload)) {
      if (const auto stats = decode_stats_response(payload)) {
        result.server_stats = *stats;
      }
    }
    close_fd(fd);
  }

  log << "loadgen: " << result.decisions_ok << " decisions ok, "
      << result.decisions_rejected << " rejected, in " << result.wall_s
      << " s = " << result.achieved_rate_hz() / 1e6
      << " M decisions/s; hit fraction " << result.hit_fraction()
      << ", win fraction "
      << (result.decisions_ok > 0
              ? static_cast<double>(result.rounds_won) /
                    static_cast<double>(result.decisions_ok)
              : 0.0)
      << "\n";
  if (cfg.deadline_us > 0) {
    log << "loadgen: deadline " << cfg.deadline_us << " us, "
        << result.deadline_missed << " decisions missed it\n";
  }
  log << "loadgen: batch RTT p50 " << result.latency.quantile(0.5) * 1e6
      << " us, p95 " << result.latency.quantile(0.95) * 1e6 << " us, p99 "
      << result.latency.quantile(0.99) * 1e6 << " us\n"
      << "server:  generated " << result.server_stats.pairs_generated
      << ", delivered " << result.server_stats.pairs_delivered
      << ", expired " << result.server_stats.pairs_expired << ", in memory "
      << result.server_stats.pairs_in_memory << "\n";
  return result;
}

}  // namespace ftl::coordd

// ftlcoordd wire protocol: length-prefixed binary frames over a local
// stream socket.
//
// Frame:      u32 payload length (little-endian), then the payload.
// Request:    u8 message type, then a type-specific body.
//   kDecide   u32 source, u32 count, u8 inputs[count] — ask for `count`
//             coordination decisions against one pair source. Batching is
//             the point: one frame amortizes the syscall/RTT over hundreds
//             of decisions, which is how the loadgen reaches millions of
//             decisions per second on a local socket.
//   kReport   u32 source, u32 wins, u32 losses — endpoints report game
//             outcomes back; the daemon only counts them (metrics).
//   kStats    empty body — returns the broker's aggregated counters.
//   kDecideV2 u32 source, u64 trace id, u64 parent span id, u64 client
//             send timestamp (steady-clock ns), u32 deadline budget (us),
//             u32 count, u8 inputs[count] — the traced, deadline-aware
//             decide frame. Old (v1) clients keep sending kDecide.
// Response:   u8 status, then a status/type-specific body.
//   kOk + Decide: u32 count, then per decision u8 flags (bit0 = output
//             bit, bit1 = consumed a live pair, bit2 = round won) and
//             u16 win probability in 1/65535 units.
//   kRejected: empty body — admission control refused the batch
//             (bounded-queue backpressure); the client backs off.
//   kMalformed: empty body — undecodable frame or bad source index.
//   kOk + Stats: u32 field count, then that many u64 counters in the
//             order listed in StatsReply (additions only ever append).
//
// Integers are little-endian; the daemon only serves localhost, so no
// byte-swapping for the wire (asserted at encode time on the host's
// representation via memcpy — every supported target is little-endian).
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

namespace ftl::coordd {

inline constexpr std::uint32_t kMaxFrameBytes = 1u << 22;  // 4 MiB cap

enum class MsgType : std::uint8_t {
  kDecide = 1,
  kReport = 2,
  kStats = 3,
  // Versioned decide frame (protocol v2): same batched-decision body as
  // kDecide plus a propagatable trace context (trace id + parent span id),
  // the client's steady-clock send timestamp, and a per-request deadline
  // budget. Versioning is by message type: a v1 client keeps sending
  // kDecide and the daemon keeps accepting it unchanged; a v2 client
  // talking to an old daemon would be answered kMalformed, which the
  // loadgen treats as fatal (clients upgrade last).
  kDecideV2 = 4,
};

enum class Status : std::uint8_t {
  kOk = 0,
  kRejected = 1,   // admission control backpressure
  kMalformed = 2,  // undecodable frame / bad source
};

struct DecideRequest {
  std::uint32_t source = 0;
  std::vector<std::uint8_t> inputs;  // one game input bit per decision
};

/// v2 decide frame body. `trace_id` 0 means the batch is unsampled (no
/// spans recorded server-side); `deadline_us` 0 means no deadline. The
/// send timestamp is raw steady-clock nanoseconds — the daemon only serves
/// localhost, so client and server share the clock and the daemon can
/// attribute elapsed budget at each pipeline stage without any clock-sync
/// machinery.
struct DecideRequestV2 {
  std::uint32_t source = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  std::uint64_t client_send_steady_ns = 0;
  std::uint32_t deadline_us = 0;
  std::vector<std::uint8_t> inputs;  // one game input bit per decision
};

struct ReportRequest {
  std::uint32_t source = 0;
  std::uint32_t wins = 0;
  std::uint32_t losses = 0;
};

struct DecisionEntry {
  std::uint8_t flags = 0;     // bit0 output, bit1 quantum, bit2 round_won
  std::uint16_t win_q = 0;    // win probability * 65535

  static constexpr std::uint8_t kOutputBit = 1u << 0;
  static constexpr std::uint8_t kQuantumBit = 1u << 1;
  static constexpr std::uint8_t kRoundWonBit = 1u << 2;
  /// v2 only: the decision was produced after the request's deadline
  /// budget had already elapsed (measured at the end of the decide stage;
  /// a reply that then blows the budget in the write stage is counted in
  /// the daemon's miss metrics but cannot retroactively set this bit).
  static constexpr std::uint8_t kDeadlineMissBit = 1u << 3;

  [[nodiscard]] double win_probability() const {
    return static_cast<double>(win_q) / 65535.0;
  }
};

/// Aggregated daemon counters, in wire order. Fields are only ever
/// appended so old clients keep decoding newer daemons.
struct StatsReply {
  std::uint64_t requests = 0;
  std::uint64_t hits = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t rejected = 0;
  std::uint64_t rounds_won = 0;
  std::uint64_t pairs_generated = 0;
  std::uint64_t pairs_delivered = 0;
  std::uint64_t pairs_lost_fiber = 0;
  std::uint64_t pairs_expired = 0;
  std::uint64_t pairs_dropped_full = 0;
  std::uint64_t pairs_in_memory = 0;

  static constexpr std::uint32_t kFieldCount = 11;
};

// ---------------------------------------------------------------------------
// Encoding helpers (append to / read from a byte buffer).
// ---------------------------------------------------------------------------

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) { append(&v, sizeof v); }
  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  void bytes(const std::uint8_t* p, std::size_t n) { append(p, n); }

 private:
  void append(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out_.insert(out_.end(), b, b + n);
  }
  std::vector<std::uint8_t>& out_;
};

class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t u8() { return take<std::uint8_t>(); }
  std::uint16_t u16() { return take<std::uint16_t>(); }
  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::uint64_t u64() { return take<std::uint64_t>(); }

  bool bytes(std::uint8_t* dst, std::size_t n) {
    if (remaining() < n) {
      ok_ = false;
      return false;
    }
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return true;
  }

 private:
  template <class T>
  T take() {
    T v{};
    if (remaining() < sizeof(T)) {
      ok_ = false;
      return v;
    }
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Message encode/decode (payload only; the frame length prefix is handled
// by the socket layer).
// ---------------------------------------------------------------------------

inline std::vector<std::uint8_t> encode_decide_request(
    const DecideRequest& req) {
  std::vector<std::uint8_t> out;
  out.reserve(9 + req.inputs.size());
  ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kDecide));
  w.u32(req.source);
  w.u32(static_cast<std::uint32_t>(req.inputs.size()));
  if (!req.inputs.empty()) w.bytes(req.inputs.data(), req.inputs.size());
  return out;
}

inline std::vector<std::uint8_t> encode_decide_request_v2(
    const DecideRequestV2& req) {
  std::vector<std::uint8_t> out;
  out.reserve(37 + req.inputs.size());
  ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kDecideV2));
  w.u32(req.source);
  w.u64(req.trace_id);
  w.u64(req.parent_span_id);
  w.u64(req.client_send_steady_ns);
  w.u32(req.deadline_us);
  w.u32(static_cast<std::uint32_t>(req.inputs.size()));
  if (!req.inputs.empty()) w.bytes(req.inputs.data(), req.inputs.size());
  return out;
}

inline std::vector<std::uint8_t> encode_report_request(
    const ReportRequest& req) {
  std::vector<std::uint8_t> out;
  ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>(MsgType::kReport));
  w.u32(req.source);
  w.u32(req.wins);
  w.u32(req.losses);
  return out;
}

inline std::vector<std::uint8_t> encode_stats_request() {
  return {static_cast<std::uint8_t>(MsgType::kStats)};
}

inline std::vector<std::uint8_t> encode_status_response(Status status) {
  return {static_cast<std::uint8_t>(status)};
}

inline std::vector<std::uint8_t> encode_decide_response(
    const std::vector<DecisionEntry>& entries) {
  std::vector<std::uint8_t> out;
  out.reserve(5 + entries.size() * 3);
  ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>(Status::kOk));
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const DecisionEntry& e : entries) {
    w.u8(e.flags);
    w.u16(e.win_q);
  }
  return out;
}

inline std::vector<std::uint8_t> encode_stats_response(const StatsReply& s) {
  std::vector<std::uint8_t> out;
  out.reserve(5 + StatsReply::kFieldCount * 8);
  ByteWriter w(out);
  w.u8(static_cast<std::uint8_t>(Status::kOk));
  w.u32(StatsReply::kFieldCount);
  w.u64(s.requests);
  w.u64(s.hits);
  w.u64(s.fallbacks);
  w.u64(s.rejected);
  w.u64(s.rounds_won);
  w.u64(s.pairs_generated);
  w.u64(s.pairs_delivered);
  w.u64(s.pairs_lost_fiber);
  w.u64(s.pairs_expired);
  w.u64(s.pairs_dropped_full);
  w.u64(s.pairs_in_memory);
  return out;
}

inline std::optional<DecideRequest> decode_decide_request(ByteReader& r) {
  DecideRequest req;
  req.source = r.u32();
  const std::uint32_t count = r.u32();
  if (!r.ok() || count > kMaxFrameBytes || r.remaining() < count) {
    return std::nullopt;
  }
  req.inputs.resize(count);
  if (count > 0 && !r.bytes(req.inputs.data(), count)) return std::nullopt;
  return req;
}

inline std::optional<DecideRequestV2> decode_decide_request_v2(
    ByteReader& r) {
  DecideRequestV2 req;
  req.source = r.u32();
  req.trace_id = r.u64();
  req.parent_span_id = r.u64();
  req.client_send_steady_ns = r.u64();
  req.deadline_us = r.u32();
  const std::uint32_t count = r.u32();
  if (!r.ok() || count > kMaxFrameBytes || r.remaining() < count) {
    return std::nullopt;
  }
  req.inputs.resize(count);
  if (count > 0 && !r.bytes(req.inputs.data(), count)) return std::nullopt;
  return req;
}

inline std::optional<ReportRequest> decode_report_request(ByteReader& r) {
  ReportRequest req;
  req.source = r.u32();
  req.wins = r.u32();
  req.losses = r.u32();
  if (!r.ok()) return std::nullopt;
  return req;
}

/// Decodes a decide response payload; nullopt when not a well-formed kOk
/// decide reply (check `status_out` for kRejected before treating nullopt
/// as an error).
inline std::optional<std::vector<DecisionEntry>> decode_decide_response(
    const std::vector<std::uint8_t>& payload, Status* status_out = nullptr) {
  ByteReader r(payload.data(), payload.size());
  const auto status = static_cast<Status>(r.u8());
  if (status_out != nullptr) *status_out = status;
  if (!r.ok() || status != Status::kOk) return std::nullopt;
  const std::uint32_t count = r.u32();
  if (!r.ok() || r.remaining() != static_cast<std::size_t>(count) * 3) {
    return std::nullopt;
  }
  std::vector<DecisionEntry> entries(count);
  for (DecisionEntry& e : entries) {
    e.flags = r.u8();
    e.win_q = r.u16();
  }
  if (!r.ok()) return std::nullopt;
  return entries;
}

inline std::optional<StatsReply> decode_stats_response(
    const std::vector<std::uint8_t>& payload, Status* status_out = nullptr) {
  ByteReader r(payload.data(), payload.size());
  const auto status = static_cast<Status>(r.u8());
  if (status_out != nullptr) *status_out = status;
  if (!r.ok() || status != Status::kOk) return std::nullopt;
  const std::uint32_t fields = r.u32();
  if (!r.ok() || fields < StatsReply::kFieldCount) return std::nullopt;
  StatsReply s;
  s.requests = r.u64();
  s.hits = r.u64();
  s.fallbacks = r.u64();
  s.rejected = r.u64();
  s.rounds_won = r.u64();
  s.pairs_generated = r.u64();
  s.pairs_delivered = r.u64();
  s.pairs_lost_fiber = r.u64();
  s.pairs_expired = r.u64();
  s.pairs_dropped_full = r.u64();
  s.pairs_in_memory = r.u64();
  // Skip fields appended by newer daemons.
  for (std::uint32_t i = StatsReply::kFieldCount; i < fields && r.ok(); ++i) {
    (void)r.u64();
  }
  if (!r.ok()) return std::nullopt;
  return s;
}

}  // namespace ftl::coordd

// Multi-threaded open-loop load generator for ftlcoordd.
//
// Each worker owns one connection and one source, paces batch departures
// from a fixed schedule (open loop: send times do not depend on response
// times, so the daemon sees the offered load even when it is slow), keeps
// up to `pipeline` batches in flight, and records per-batch round-trip
// latency. Batching is what makes millions of decisions per second
// possible over a localhost socket: at batch 512 a single frame round-trip
// carries 512 decisions.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "ftlcoordd/protocol.hpp"
#include "util/histogram.hpp"

namespace ftl::coordd {

struct LoadgenConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Worker threads; worker i drives source (i % daemon sources).
  std::size_t threads = 2;
  std::size_t sources = 1;
  /// Decisions per frame.
  std::size_t batch = 512;
  /// Total decisions across all workers (rounded up to whole batches).
  std::uint64_t decisions = 1'000'000;
  /// Offered load in decisions/s across all workers; 0 = as fast as the
  /// pipeline allows (closed-loop saturation).
  double rate_hz = 0.0;
  /// Batches in flight per connection before the worker must wait.
  std::size_t pipeline = 4;
  /// Report wins/losses back via kReport at the end of the run.
  bool report = true;
  /// Seed for deterministic trace-id derivation: worker w's batch b is
  /// traced under TraceContext::derive(seed, w, b), so a stepped schedule
  /// reproduces the same trace ids run over run.
  std::uint64_t seed = 42;
  /// Trace 1 of every N batches per worker (0 = tracing off). Sampled
  /// batches carry their trace context to the daemon in the v2 frame and
  /// record a client-side batch_rtt span.
  std::uint64_t trace_sample_n = 0;
  /// Per-request deadline budget, microseconds (0 = no deadline). Carried
  /// in every v2 frame; the daemon attributes misses per stage and sets
  /// kDeadlineMissBit on late decisions.
  std::uint32_t deadline_us = 0;
};

struct LoadgenResult {
  bool ok = false;
  std::string error;

  std::uint64_t decisions_sent = 0;
  std::uint64_t decisions_ok = 0;
  std::uint64_t decisions_rejected = 0;  // admission backpressure
  std::uint64_t quantum = 0;
  std::uint64_t rounds_won = 0;
  /// Decisions whose reply carried kDeadlineMissBit (v2 with a deadline).
  std::uint64_t deadline_missed = 0;
  double wall_s = 0.0;
  /// Per-batch round-trip latency, seconds.
  util::Histogram latency{0.0, 0.05, 500};
  /// Daemon-side counters scraped via kStats after the run.
  StatsReply server_stats;

  [[nodiscard]] double achieved_rate_hz() const {
    return wall_s > 0.0 ? static_cast<double>(decisions_ok) / wall_s : 0.0;
  }
  [[nodiscard]] double hit_fraction() const {
    return decisions_ok == 0 ? 0.0
                             : static_cast<double>(quantum) /
                                   static_cast<double>(decisions_ok);
  }
};

/// Runs the workers to completion and prints a human-readable summary to
/// `log` (pass std::cerr; use result fields for machine consumption).
[[nodiscard]] LoadgenResult run_loadgen(const LoadgenConfig& cfg,
                                        std::ostream& log);

}  // namespace ftl::coordd

#include "ftlcoordd/daemon.hpp"

#include <unistd.h>

#include <algorithm>
#include <string>

#include "ftlcoordd/net.hpp"
#include "ftlcoordd/protocol.hpp"
#include "obs/export.hpp"

namespace ftl::coordd {

namespace {

/// Serving-path decision latency: per-decision cost of a batched decide,
/// dominated by the broker pool operation (tens of ns) — the histogram's
/// upper edge leaves room for scheduling noise.
constexpr double kLatencyHistHi = 50e-6;

}  // namespace

Daemon::Daemon(const DaemonConfig& cfg)
    : cfg_(cfg),
      m_connections_(obs::registry().counter("qnet.live.connections")),
      m_frames_(obs::registry().counter("qnet.live.frames")),
      m_malformed_(obs::registry().counter("qnet.live.malformed")),
      m_scrapes_(obs::registry().counter("qnet.live.metrics_scrapes")),
      m_decision_latency_(obs::registry().histogram(
          "qnet.live.decision_latency_s", 0.0, kLatencyHistHi, 50)),
      m_batch_size_(obs::registry().histogram("qnet.live.batch_size", 0.0,
                                              4096.0, 64)) {}

Daemon::~Daemon() { stop(); }

bool Daemon::start() {
  if (running_.load()) return true;
  broker_ = std::make_unique<qnet::LiveBroker>(cfg_.broker, cfg_.seed);
  listen_fd_ = listen_tcp(cfg_.port);
  metrics_listen_fd_ = listen_tcp(cfg_.metrics_port);
  if (listen_fd_ < 0 || metrics_listen_fd_ < 0) {
    close_fd(listen_fd_);
    close_fd(metrics_listen_fd_);
    listen_fd_ = metrics_listen_fd_ = -1;
    broker_.reset();
    return false;
  }
  port_ = bound_port(listen_fd_);
  metrics_port_ = bound_port(metrics_listen_fd_);
  stopping_.store(false);
  running_.store(true);
  broker_->start_producer(cfg_.producer_period);
  acceptor_ = std::thread([this] { accept_loop(); });
  metrics_acceptor_ = std::thread([this] { metrics_loop(); });
  return true;
}

void Daemon::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  // Closing the listeners wakes the acceptors' poll. The members are only
  // reassigned after the join: the acceptor threads read their fd at entry,
  // so the close itself is the only thing racing the poll (benign by
  // design — POLLNVAL/timeout both re-check stopping_).
  close_fd(listen_fd_);
  close_fd(metrics_listen_fd_);
  if (acceptor_.joinable()) acceptor_.join();
  if (metrics_acceptor_.joinable()) metrics_acceptor_.join();
  listen_fd_ = metrics_listen_fd_ = -1;
  // Unblock handlers stuck in read_frame, then join them.
  std::vector<std::thread> handlers;
  {
    const std::lock_guard<std::mutex> lock(conns_mu_);
    for (const int fd : live_fds_) shutdown_fd(fd);
    handlers.swap(handlers_);
  }
  for (std::thread& h : handlers) {
    if (h.joinable()) h.join();
  }
  broker_->stop_producer();
}

void Daemon::track_fd(int fd) {
  const std::lock_guard<std::mutex> lock(conns_mu_);
  live_fds_.push_back(fd);
}

void Daemon::untrack_fd(int fd) {
  const std::lock_guard<std::mutex> lock(conns_mu_);
  live_fds_.erase(std::remove(live_fds_.begin(), live_fds_.end(), fd),
                  live_fds_.end());
}

void Daemon::cleanup(int fd) {
  untrack_fd(fd);
  close_fd(fd);
}

void Daemon::accept_loop() {
  const int lfd = listen_fd_;  // read once; stop() reassigns after join
  while (!stopping_.load()) {
    const int fd = accept_with_timeout(lfd, /*timeout_ms=*/100);
    if (fd == -1) continue;  // timeout; re-check stopping_
    if (fd == -2) break;     // listener closed
    m_connections_.inc();
    track_fd(fd);
    const std::lock_guard<std::mutex> lock(conns_mu_);
    handlers_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void Daemon::metrics_loop() {
  const int lfd = metrics_listen_fd_;  // read once; see accept_loop
  while (!stopping_.load()) {
    const int fd = accept_with_timeout(lfd, /*timeout_ms=*/100);
    if (fd == -1) continue;
    if (fd == -2) break;
    serve_metrics_once(fd);
    close_fd(fd);
  }
}

void Daemon::serve_metrics_once(int fd) {
  // Minimal HTTP/1.0: read (and discard) whatever request arrived, answer
  // with the text exposition, close. Enough for curl and Prometheus.
  char buf[1024];
  (void)::read(fd, buf, sizeof buf);
  m_scrapes_.inc();
  const std::string body = obs::prometheus_text(obs::registry().snapshot());
  const std::string response =
      "HTTP/1.0 200 OK\r\n"
      "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      "Content-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body;
  (void)write_full(fd, response.data(), response.size());
}

void Daemon::handle_connection(int fd) {
  std::vector<std::uint8_t> payload;
  std::vector<DecisionEntry> entries;
  while (!stopping_.load() && read_frame(fd, payload)) {
    m_frames_.inc();
    ByteReader r(payload.data(), payload.size());
    const auto type = static_cast<MsgType>(r.u8());
    if (!r.ok()) {
      m_malformed_.inc();
      if (!write_frame(fd, encode_status_response(Status::kMalformed))) break;
      continue;
    }
    switch (type) {
      case MsgType::kDecide: {
        const auto req = decode_decide_request(r);
        if (!req || req->source >= cfg_.broker.sources) {
          m_malformed_.inc();
          if (!write_frame(fd, encode_status_response(Status::kMalformed))) {
            return cleanup(fd);
          }
          break;
        }
        const std::size_t n = req->inputs.size();
        m_batch_size_.observe(static_cast<double>(n));
        if (n == 0 || !broker_->try_admit(n)) {
          // Bounded-queue backpressure: refuse the whole batch; the client
          // retries after backing off (or sheds load).
          if (!write_frame(fd, encode_status_response(Status::kRejected))) {
            return cleanup(fd);
          }
          break;
        }
        const auto t0 = std::chrono::steady_clock::now();
        entries.clear();
        entries.reserve(n);
        for (const std::uint8_t input : req->inputs) {
          const auto d = broker_->decide_now(req->source, input);
          DecisionEntry e;
          if (d.output != 0) e.flags |= DecisionEntry::kOutputBit;
          if (d.quantum) e.flags |= DecisionEntry::kQuantumBit;
          if (d.round_won) e.flags |= DecisionEntry::kRoundWonBit;
          e.win_q = static_cast<std::uint16_t>(
              std::min(65535.0, d.win_probability * 65535.0 + 0.5));
          entries.push_back(e);
        }
        broker_->release(n);
        const double per_decision_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count() /
            static_cast<double>(n);
        // One weighted observation per decision keeps the histogram's
        // percentiles per-decision, not per-batch.
        for (std::size_t i = 0; i < n; ++i) {
          m_decision_latency_.observe(per_decision_s);
        }
        if (!write_frame(fd, encode_decide_response(entries))) {
          return cleanup(fd);
        }
        break;
      }
      case MsgType::kReport: {
        const auto req = decode_report_request(r);
        if (!req || req->source >= cfg_.broker.sources) {
          m_malformed_.inc();
          if (!write_frame(fd, encode_status_response(Status::kMalformed))) {
            return cleanup(fd);
          }
          break;
        }
        obs::registry()
            .counter("qnet.live.reported.wins")
            .inc(req->wins);
        obs::registry()
            .counter("qnet.live.reported.losses")
            .inc(req->losses);
        if (!write_frame(fd, encode_status_response(Status::kOk))) {
          return cleanup(fd);
        }
        break;
      }
      case MsgType::kStats: {
        const qnet::LiveBrokerStats s = broker_->stats();
        StatsReply reply;
        reply.requests = s.requests;
        reply.hits = s.hits;
        reply.fallbacks = s.fallbacks;
        reply.rejected = s.rejected;
        reply.rounds_won = s.rounds_won;
        reply.pairs_generated = s.pairs_generated;
        reply.pairs_delivered = s.pairs_delivered;
        reply.pairs_lost_fiber = s.pairs_lost_fiber;
        reply.pairs_expired = s.pairs_expired;
        reply.pairs_dropped_full = s.pairs_dropped_full;
        reply.pairs_in_memory = s.pairs_in_memory;
        if (!write_frame(fd, encode_stats_response(reply))) {
          return cleanup(fd);
        }
        break;
      }
      default:
        m_malformed_.inc();
        if (!write_frame(fd, encode_status_response(Status::kMalformed))) {
          return cleanup(fd);
        }
        break;
    }
  }
  cleanup(fd);
}

}  // namespace ftl::coordd

#include "ftlcoordd/daemon.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include "ftlcoordd/net.hpp"
#include "ftlcoordd/protocol.hpp"
#include "obs/export.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace ftl::coordd {

namespace {

using Clock = std::chrono::steady_clock;

/// Serving-path decision latency: per-decision cost of a batched decide,
/// dominated by the broker pool operation (tens of ns) — the histogram's
/// upper edge leaves room for scheduling noise.
constexpr double kLatencyHistHi = 50e-6;

/// Per-batch stage times run from sub-microsecond (admission) to hundreds
/// of microseconds (socket read on a loaded wire); 2 ms of range keeps the
/// tail visible without washing out the bulk.
constexpr double kStageHistHiUs = 2000.0;
constexpr std::size_t kStageHistBins = 80;

/// Sliding window: 10 one-second epochs, so the /metrics windowed
/// percentile gauges describe roughly the last ten seconds of traffic.
constexpr std::size_t kWindowEpochs = 10;
constexpr std::chrono::milliseconds kWindowEpochLen{1000};

/// Span labels for deterministic child span ids: 0 is the server root
/// span, stages follow at 1 + stage index.
constexpr std::uint64_t kRootSpanLabel = 0;

std::uint64_t steady_ns(Clock::time_point tp) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          tp.time_since_epoch())
          .count());
}

/// On-demand profile bounds: long enough for a useful flamegraph, short
/// enough that the (single-threaded) metrics acceptor is never wedged for
/// more than half a minute.
constexpr long kProfileMinSeconds = 1;
constexpr long kProfileMaxSeconds = 30;
constexpr long kProfileDefaultSeconds = 5;
constexpr long kProfileMinHz = 1;
constexpr long kProfileMaxHz = 1000;
constexpr long kProfileDefaultHz = 99;

/// A parsed HTTP request line ("GET /profile?seconds=2 HTTP/1.1").
struct RequestLine {
  std::string method;
  std::string path;   // target up to '?'
  std::string query;  // after '?', possibly empty
};

/// Parses the first line of `request`; nullopt when it is not a
/// three-token HTTP request line with an absolute path target.
std::optional<RequestLine> parse_request_line(std::string_view request) {
  const std::size_t eol = request.find("\r\n");
  std::string_view line =
      eol == std::string_view::npos ? request : request.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return std::nullopt;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) return std::nullopt;
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (target.empty() || target[0] != '/') return std::nullopt;
  if (version.rfind("HTTP/", 0) != 0) return std::nullopt;
  RequestLine out;
  out.method = std::string(line.substr(0, sp1));
  const std::size_t q = target.find('?');
  out.path = std::string(target.substr(0, q));
  if (q != std::string_view::npos) out.query = std::string(target.substr(q + 1));
  return out;
}

/// Value of `key` in an `a=1&b=2` query string, clamped into
/// [lo, hi]; `fallback` when absent or not a number.
long query_long(std::string_view query, std::string_view key, long fallback,
                long lo, long hi) {
  long value = fallback;
  std::size_t pos = 0;
  while (pos <= query.size()) {
    const std::size_t amp = query.find('&', pos);
    const std::string_view pair = query.substr(
        pos, amp == std::string_view::npos ? std::string_view::npos
                                           : amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      const std::string digits(pair.substr(eq + 1));
      char* end = nullptr;
      errno = 0;
      const long parsed = std::strtol(digits.c_str(), &end, 10);
      if (errno == 0 && end != digits.c_str() && *end == '\0') value = parsed;
    }
    if (amp == std::string_view::npos) break;
    pos = amp + 1;
  }
  return std::clamp(value, lo, hi);
}

/// Writes a full HTTP/1.0 response. HEAD requests get the headers (with
/// the Content-Length the body *would* have) and no body bytes.
void send_http(int fd, std::string_view status, std::string_view content_type,
               std::string_view body, bool head_only) {
  std::string response = "HTTP/1.0 ";
  response += status;
  response += "\r\nContent-Type: ";
  response += content_type;
  response += "\r\nContent-Length: " + std::to_string(body.size()) +
              "\r\nConnection: close\r\n\r\n";
  if (!head_only) response += body;
  (void)write_full(fd, response.data(), response.size());
}

}  // namespace

const char* stage_name(Stage s) noexcept {
  switch (s) {
    case Stage::kSocketRead:
      return "socket_read";
    case Stage::kAdmission:
      return "admission";
    case Stage::kPairAcquire:
      return "pair_acquire";
    case Stage::kDecide:
      return "decide";
    case Stage::kReplyWrite:
      return "reply_write";
  }
  return "unknown";
}

Daemon::Daemon(const DaemonConfig& cfg)
    : cfg_(cfg),
      m_connections_(obs::registry().counter("qnet.live.connections")),
      m_frames_(obs::registry().counter("qnet.live.frames")),
      m_malformed_(obs::registry().counter("qnet.live.malformed")),
      m_scrapes_(obs::registry().counter("qnet.live.metrics_scrapes")),
      m_decision_latency_(obs::registry().histogram(
          "qnet.live.decision_latency_s", 0.0, kLatencyHistHi, 50)),
      m_batch_size_(obs::registry().histogram("qnet.live.batch_size", 0.0,
                                              4096.0, 64)),
      m_deadline_hit_(obs::registry().counter("coordd.deadline.hit")),
      m_profile_requests_(obs::registry().counter("coordd.profile.requests")) {
  // Help strings for the daemon-owned families, surfaced as `# HELP` lines
  // on /metrics. Keyed by dotted name; idempotent across Daemon instances.
  obs::set_metric_help("qnet.live.requests",
                       "Decision requests served by the live broker.");
  obs::set_metric_help("qnet.live.connections",
                       "Decide-protocol TCP connections accepted.");
  obs::set_metric_help("qnet.live.frames",
                       "Protocol frames received on decide connections.");
  obs::set_metric_help("qnet.live.malformed",
                       "Frames rejected as malformed or out of range.");
  obs::set_metric_help("qnet.live.metrics_scrapes",
                       "HTTP scrapes served on /metrics.");
  obs::set_metric_help("qnet.live.decision_latency_s",
                       "Per-decision broker latency within a batch.");
  obs::set_metric_help("qnet.live.batch_size",
                       "Decisions per decide batch.");
  obs::set_metric_help(
      "coordd.stage_us",
      "Per-batch serving-path stage latency in microseconds, by stage.");
  obs::set_metric_help("coordd.deadline.hit",
                       "Batches that met their deadline budget.");
  obs::set_metric_help(
      "coordd.deadline.miss",
      "Batches that blew their deadline budget, by first late stage.");
  obs::set_metric_help("coordd.profile.requests",
                       "On-demand CPU profile requests on /profile.");
  for (std::size_t i = 0; i < kNumStages; ++i) {
    const obs::Labels labels{{"stage", stage_name(static_cast<Stage>(i))}};
    m_stage_us_[i] = &obs::registry().histogram(
        "coordd.stage_us", 0.0, kStageHistHiUs, kStageHistBins, labels);
    m_stage_window_[i] = std::make_unique<obs::SlidingHistogram>(
        "coordd.stage_us", 0.0, kStageHistHiUs, kStageHistBins, kWindowEpochs,
        kWindowEpochLen, nullptr, labels);
    m_deadline_miss_[i] =
        &obs::registry().counter("coordd.deadline.miss", labels);
  }
}

Daemon::~Daemon() { stop(); }

bool Daemon::start() {
  if (running_.load()) return true;
  broker_ = std::make_unique<qnet::LiveBroker>(cfg_.broker, cfg_.seed);
  listen_fd_ = listen_tcp(cfg_.port);
  metrics_listen_fd_ = listen_tcp(cfg_.metrics_port);
  if (listen_fd_ < 0 || metrics_listen_fd_ < 0) {
    close_fd(listen_fd_);
    close_fd(metrics_listen_fd_);
    listen_fd_ = metrics_listen_fd_ = -1;
    broker_.reset();
    return false;
  }
  port_ = bound_port(listen_fd_);
  metrics_port_ = bound_port(metrics_listen_fd_);
  stopping_.store(false);
  running_.store(true);
  broker_->start_producer(cfg_.producer_period);
  acceptor_ = std::thread([this] { accept_loop(); });
  metrics_acceptor_ = std::thread([this] { metrics_loop(); });
  return true;
}

void Daemon::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  // Closing the listeners wakes the acceptors' poll. The members are only
  // reassigned after the join: the acceptor threads read their fd at entry,
  // so the close itself is the only thing racing the poll (benign by
  // design — POLLNVAL/timeout both re-check stopping_).
  close_fd(listen_fd_);
  close_fd(metrics_listen_fd_);
  if (acceptor_.joinable()) acceptor_.join();
  if (metrics_acceptor_.joinable()) metrics_acceptor_.join();
  listen_fd_ = metrics_listen_fd_ = -1;
  // Unblock handlers stuck in read_frame, then join them.
  std::vector<std::thread> handlers;
  {
    const std::lock_guard<std::mutex> lock(conns_mu_);
    for (const int fd : live_fds_) shutdown_fd(fd);
    handlers.swap(handlers_);
  }
  for (std::thread& h : handlers) {
    if (h.joinable()) h.join();
  }
  broker_->stop_producer();
  // Final window flush so a run report written right after stop() carries
  // the last live percentiles instead of stale gauges.
  flush_stage_windows();
}

void Daemon::flush_stage_windows() {
  for (auto& w : m_stage_window_) {
    if (w) w->flush();
  }
}

void Daemon::track_fd(int fd) {
  const std::lock_guard<std::mutex> lock(conns_mu_);
  live_fds_.push_back(fd);
}

void Daemon::untrack_fd(int fd) {
  const std::lock_guard<std::mutex> lock(conns_mu_);
  live_fds_.erase(std::remove(live_fds_.begin(), live_fds_.end(), fd),
                  live_fds_.end());
}

void Daemon::cleanup(int fd) {
  untrack_fd(fd);
  close_fd(fd);
}

void Daemon::accept_loop() {
  const int lfd = listen_fd_;  // read once; stop() reassigns after join
  while (!stopping_.load()) {
    const int fd = accept_with_timeout(lfd, /*timeout_ms=*/100);
    if (fd == -1) continue;  // timeout; re-check stopping_
    if (fd == -2) break;     // listener closed
    m_connections_.inc();
    track_fd(fd);
    const std::lock_guard<std::mutex> lock(conns_mu_);
    handlers_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void Daemon::metrics_loop() {
  const int lfd = metrics_listen_fd_;  // read once; see accept_loop
  while (!stopping_.load()) {
    const int fd = accept_with_timeout(lfd, /*timeout_ms=*/100);
    if (fd == -1) continue;
    if (fd == -2) break;
    serve_metrics_once(fd);
    close_fd(fd);
  }
}

void Daemon::serve_metrics_once(int fd) {
  // Minimal HTTP/1.0 server: read the request head, parse the request
  // line, route. Exactly two resources exist — /metrics (GET/HEAD) and
  // /profile (GET) — and everything else is an error status, so a typo'd
  // scrape URL fails loudly instead of silently receiving the exposition.
  // Responses go through write_full, which loops over partial writes and
  // sends with MSG_NOSIGNAL so a scraper hanging up mid-body surfaces as
  // EPIPE, not a fatal SIGPIPE — large registries (many labeled
  // histograms) routinely exceed one socket buffer.
  constexpr std::size_t kMaxRequestBytes = 4096;
  constexpr std::string_view kTextPlain = "text/plain; charset=utf-8";
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    ssize_t got;
    do {
      got = ::read(fd, buf, sizeof buf);
    } while (got < 0 && errno == EINTR);
    if (got <= 0) break;
    request.append(buf, static_cast<std::size_t>(got));
    // A bare request line with no headers still routes: curl always sends
    // a Host header, but the tests (and netcat users) may not.
    if (request.find("\r\n") != std::string::npos) break;
  }

  const std::optional<RequestLine> line = parse_request_line(request);
  if (!line) {
    send_http(fd, "400 Bad Request", kTextPlain, "malformed request line\n",
              /*head_only=*/false);
    return;
  }
  const bool is_get = line->method == "GET";
  const bool is_head = line->method == "HEAD";

  if (line->path == "/metrics") {
    if (!is_get && !is_head) {
      send_http(fd, "405 Method Not Allowed", kTextPlain,
                "only GET and HEAD are supported on /metrics\n", false);
      return;
    }
    m_scrapes_.inc();
    // Publish fresh windowed percentiles before snapshotting, so every
    // scrape sees the last ~10 s of stage latency, not gauges from the
    // previous scrape.
    flush_stage_windows();
    const std::string body = obs::prometheus_text(obs::registry().snapshot());
    send_http(fd, "200 OK", "text/plain; version=0.0.4; charset=utf-8", body,
              is_head);
    return;
  }
  if (line->path == "/profile") {
    if (!is_get) {
      // HEAD is refused too: the Content-Length would require actually
      // running the profile for N seconds.
      send_http(fd, "405 Method Not Allowed", kTextPlain,
                "only GET is supported on /profile\n", false);
      return;
    }
    serve_profile_once(fd, line->query);
    return;
  }
  send_http(fd, "404 Not Found", kTextPlain,
            "unknown path (try /metrics or /profile?seconds=N&hz=H)\n",
            false);
}

void Daemon::serve_profile_once(int fd, std::string_view query) {
  m_profile_requests_.inc();
  if (!obs::kEnabled) {
    send_http(fd, "501 Not Implemented", "text/plain; charset=utf-8",
              "profiler disabled: daemon built with FTL_OBS_ENABLED=OFF\n",
              false);
    return;
  }
  const long seconds =
      query_long(query, "seconds", kProfileDefaultSeconds, kProfileMinSeconds,
                 kProfileMaxSeconds);
  const long hz = query_long(query, "hz", kProfileDefaultHz, kProfileMinHz,
                             kProfileMaxHz);
  obs::ProfilerOptions opts;
  opts.hz = static_cast<int>(hz);
  // The profiler itself is the one-session guard: a concurrent /profile
  // (or a bench profiling in the same process) owns SIGPROF until it
  // stops, and a second start() just fails.
  if (!obs::profiler().start(opts)) {
    send_http(fd, "409 Conflict", "text/plain; charset=utf-8",
              "another profile session is already running\n", false);
    return;
  }
  // Sample for the requested window, but wake every 50 ms so daemon
  // shutdown is never stuck behind a 30 s profile.
  const auto deadline = Clock::now() + std::chrono::seconds(seconds);
  while (Clock::now() < deadline && !stopping_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  obs::profiler().stop();
  const std::string body = obs::profiler().folded();
  send_http(fd, "200 OK", "text/plain; charset=utf-8", body, false);
}

bool Daemon::handle_decide(int fd, DecideRequestV2& req,
                           Clock::time_point t_loop,
                           Clock::time_point t_read,
                           std::vector<DecisionEntry>& entries,
                           std::vector<qnet::LiveBroker::Decision>& decisions) {
  const std::size_t n = req.inputs.size();
  m_batch_size_.observe(static_cast<double>(n));
  if (n == 0 || !broker_->try_admit(n)) {
    // Bounded-queue backpressure: refuse the whole batch; the client
    // retries after backing off (or sheds load).
    return write_frame(fd, encode_status_response(Status::kRejected));
  }
  const auto t_admit = Clock::now();

  // Profiler stage tags track the same boundaries the stage histograms
  // time, so folded profile weight under `stage:pair_acquire;...` joins
  // against the coordd.stage_us attribution.
  obs::set_profile_stage(stage_name(Stage::kPairAcquire));
  decisions.clear();
  decisions.reserve(n);
  for (const std::uint8_t input : req.inputs) {
    decisions.push_back(broker_->decide_now(req.source, input));
  }
  broker_->release(n);
  const auto t_acquire = Clock::now();

  obs::set_profile_stage(stage_name(Stage::kDecide));
  entries.clear();
  entries.reserve(n);
  for (const auto& d : decisions) {
    DecisionEntry e;
    if (d.output != 0) e.flags |= DecisionEntry::kOutputBit;
    if (d.quantum) e.flags |= DecisionEntry::kQuantumBit;
    if (d.round_won) e.flags |= DecisionEntry::kRoundWonBit;
    e.win_q = static_cast<std::uint16_t>(
        std::min(65535.0, d.win_probability * 65535.0 + 0.5));
    entries.push_back(e);
  }
  const auto t_decide = Clock::now();

  // Deadline attribution: the budget runs from the client's send
  // timestamp (same steady clock — localhost only); the miss belongs to
  // the first stage whose *end* saw the budget exhausted. Decisions
  // already late at the end of the decide stage carry kDeadlineMissBit
  // back to the client; a miss that only happens inside reply_write is
  // counted server-side but the bits are already on the wire.
  const bool has_deadline =
      req.deadline_us > 0 && req.client_send_steady_ns > 0;
  const std::uint64_t deadline_ns =
      req.client_send_steady_ns +
      static_cast<std::uint64_t>(req.deadline_us) * 1000u;
  int miss_stage = -1;
  if (has_deadline) {
    const Clock::time_point boundaries[4] = {t_read, t_admit, t_acquire,
                                             t_decide};
    for (int i = 0; i < 4; ++i) {
      if (steady_ns(boundaries[i]) > deadline_ns) {
        miss_stage = i;
        break;
      }
    }
    if (miss_stage >= 0) {
      for (DecisionEntry& e : entries) {
        e.flags |= DecisionEntry::kDeadlineMissBit;
      }
    }
  }

  obs::set_profile_stage(stage_name(Stage::kReplyWrite));
  const bool write_ok = write_frame(fd, encode_decide_response(entries));
  const auto t_write = Clock::now();
  obs::set_profile_stage(nullptr);

  if (has_deadline) {
    if (miss_stage < 0 && steady_ns(t_write) > deadline_ns) {
      miss_stage = static_cast<int>(Stage::kReplyWrite);
    }
    if (miss_stage >= 0) {
      m_deadline_miss_[miss_stage]->inc();
    } else {
      m_deadline_hit_.inc();
    }
  }

  // Stage latency, cumulative and windowed. One weighted observation per
  // decision keeps qnet.live.decision_latency_s per-decision.
  const double stage_us[kNumStages] = {
      std::chrono::duration<double, std::micro>(t_read - t_loop).count(),
      std::chrono::duration<double, std::micro>(t_admit - t_read).count(),
      std::chrono::duration<double, std::micro>(t_acquire - t_admit).count(),
      std::chrono::duration<double, std::micro>(t_decide - t_acquire).count(),
      std::chrono::duration<double, std::micro>(t_write - t_decide).count()};
  for (std::size_t i = 0; i < kNumStages; ++i) {
    m_stage_us_[i]->observe(stage_us[i]);
    m_stage_window_[i]->observe(stage_us[i]);
  }
  const double per_decision_s =
      std::chrono::duration<double>(t_acquire - t_admit).count() /
      static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    m_decision_latency_.observe(per_decision_s);
  }

  // Stage spans for sampled traced batches: a server root span parented to
  // the client's batch span, one child per stage. Ids derive from the
  // propagated context, so they are stable for a stepped schedule.
  obs::Tracer& tracer = obs::tracer();
  if (req.trace_id != 0 && cfg_.trace_sample_n > 0 && tracer.active() &&
      traced_batches_.fetch_add(1, std::memory_order_relaxed) %
              cfg_.trace_sample_n ==
          0) {
    const obs::TraceContext client_ctx{req.trace_id, req.parent_span_id};
    const obs::TraceContext root = client_ctx.child(kRootSpanLabel);
    tracer.record_span("serve_batch", "coordd", tracer.ts_us(t_loop),
                       std::chrono::duration<double, std::micro>(t_write -
                                                                 t_loop)
                           .count(),
                       root.trace_id, root.span_id, client_ctx.span_id);
    const Clock::time_point starts[kNumStages] = {t_loop, t_read, t_admit,
                                                  t_acquire, t_decide};
    for (std::size_t i = 0; i < kNumStages; ++i) {
      tracer.record_span(stage_name(static_cast<Stage>(i)), "coordd",
                         tracer.ts_us(starts[i]), stage_us[i], root.trace_id,
                         root.child_span_id(1 + i), root.span_id);
    }
    if (has_deadline) {
      if (miss_stage >= 0) {
        tracer.record_instant_tagged(
            "deadline_miss", "coordd", root.trace_id,
            stage_name(static_cast<Stage>(miss_stage)));
      } else {
        tracer.record_instant_tagged("deadline_hit", "coordd", root.trace_id,
                                     "none");
      }
    }
  }
  return write_ok;
}

void Daemon::handle_connection(int fd) {
  std::vector<std::uint8_t> payload;
  std::vector<DecisionEntry> entries;
  std::vector<qnet::LiveBroker::Decision> decisions;
  while (!stopping_.load()) {
    const auto t_loop = Clock::now();
    obs::set_profile_stage(stage_name(Stage::kSocketRead));
    if (!read_frame(fd, payload)) break;
    const auto t_read = Clock::now();
    obs::set_profile_stage(stage_name(Stage::kAdmission));
    m_frames_.inc();
    ByteReader r(payload.data(), payload.size());
    const auto type = static_cast<MsgType>(r.u8());
    if (!r.ok()) {
      m_malformed_.inc();
      if (!write_frame(fd, encode_status_response(Status::kMalformed))) break;
      continue;
    }
    switch (type) {
      case MsgType::kDecide:
      case MsgType::kDecideV2: {
        // Both protocol versions funnel into the same pipeline; a v1
        // frame simply has no trace context and no deadline.
        DecideRequestV2 req;
        bool decoded = false;
        if (type == MsgType::kDecide) {
          if (auto v1 = decode_decide_request(r)) {
            req.source = v1->source;
            req.inputs = std::move(v1->inputs);
            decoded = true;
          }
        } else if (auto v2 = decode_decide_request_v2(r)) {
          req = std::move(*v2);
          decoded = true;
        }
        if (!decoded || req.source >= cfg_.broker.sources) {
          m_malformed_.inc();
          if (!write_frame(fd, encode_status_response(Status::kMalformed))) {
            return cleanup(fd);
          }
          break;
        }
        if (!handle_decide(fd, req, t_loop, t_read, entries, decisions)) {
          return cleanup(fd);
        }
        break;
      }
      case MsgType::kReport: {
        const auto req = decode_report_request(r);
        if (!req || req->source >= cfg_.broker.sources) {
          m_malformed_.inc();
          if (!write_frame(fd, encode_status_response(Status::kMalformed))) {
            return cleanup(fd);
          }
          break;
        }
        obs::registry()
            .counter("qnet.live.reported.wins")
            .inc(req->wins);
        obs::registry()
            .counter("qnet.live.reported.losses")
            .inc(req->losses);
        if (!write_frame(fd, encode_status_response(Status::kOk))) {
          return cleanup(fd);
        }
        break;
      }
      case MsgType::kStats: {
        const qnet::LiveBrokerStats s = broker_->stats();
        StatsReply reply;
        reply.requests = s.requests;
        reply.hits = s.hits;
        reply.fallbacks = s.fallbacks;
        reply.rejected = s.rejected;
        reply.rounds_won = s.rounds_won;
        reply.pairs_generated = s.pairs_generated;
        reply.pairs_delivered = s.pairs_delivered;
        reply.pairs_lost_fiber = s.pairs_lost_fiber;
        reply.pairs_expired = s.pairs_expired;
        reply.pairs_dropped_full = s.pairs_dropped_full;
        reply.pairs_in_memory = s.pairs_in_memory;
        if (!write_frame(fd, encode_stats_response(reply))) {
          return cleanup(fd);
        }
        break;
      }
      default:
        m_malformed_.inc();
        if (!write_frame(fd, encode_status_response(Status::kMalformed))) {
          return cleanup(fd);
        }
        break;
    }
  }
  obs::set_profile_stage(nullptr);
  cleanup(fd);
}

}  // namespace ftl::coordd

#include "ftlbench/tracemerge.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "obs/json.hpp"

namespace ftl::benchtool {

namespace {

namespace json = ftl::obs::json;

/// One trace file, decoded just far enough to merge: the steady-clock
/// origin and a flat view of its events.
struct TraceDoc {
  std::uint64_t t0_steady_ns = 0;
  const json::Value* events = nullptr;  // traceEvents array
};

bool parse_doc(const json::Value& root, TraceDoc& out, std::string& error,
               const char* which) {
  if (!root.is_object()) {
    error = std::string(which) + ": not a JSON object";
    return false;
  }
  const json::Value* other = root.find("otherData");
  const json::Value* t0 = other != nullptr ? other->find("t0_steady_ns")
                                           : nullptr;
  if (t0 == nullptr || !t0->is_string()) {
    error = std::string(which) +
            ": missing otherData.t0_steady_ns (trace written by an older "
            "tracer, or not an ftl trace)";
    return false;
  }
  out.t0_steady_ns = std::strtoull(t0->string.c_str(), nullptr, 10);
  const json::Value* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    error = std::string(which) + ": missing traceEvents array";
    return false;
  }
  out.events = events;
  return true;
}

double num_or(const json::Value* v, double fallback) {
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string str_or(const json::Value* v, const char* fallback) {
  return v != nullptr && v->is_string() ? v->string : std::string(fallback);
}

/// args.<key> as a string; empty when absent.
std::string arg_str(const json::Value& event, const char* key) {
  const json::Value* args = event.find("args");
  if (args == nullptr) return {};
  const json::Value* v = args->find(key);
  return v != nullptr && v->is_string() ? v->string : std::string();
}

struct Span {
  double ts_us = 0.0;
  double dur_us = 0.0;
  bool present = false;
};

/// Everything the server recorded about one trace id.
struct ServerTrace {
  Span stages[5];  // socket_read, admission, pair_acquire, decide, reply_write
};

int stage_index(const std::string& name) {
  static const char* kNames[5] = {"socket_read", "admission", "pair_acquire",
                                  "decide", "reply_write"};
  for (int i = 0; i < 5; ++i) {
    if (name == kNames[i]) return i;
  }
  return -1;
}

/// Re-emits a parsed JSON value verbatim (args pass-through in the merged
/// document).
void write_value(json::Writer& w, const json::Value& v) {
  switch (v.kind) {
    case json::Value::Kind::kNull:
      w.null();
      break;
    case json::Value::Kind::kBool:
      w.value(v.boolean);
      break;
    case json::Value::Kind::kNumber:
      w.value(v.number);
      break;
    case json::Value::Kind::kString:
      w.value(v.string);
      break;
    case json::Value::Kind::kArray:
      w.begin_array();
      for (const json::Value& e : v.array) write_value(w, e);
      w.end_array();
      break;
    case json::Value::Kind::kObject:
      w.begin_object();
      for (const auto& [k, e] : v.object) {
        w.key(k);
        write_value(w, e);
      }
      w.end_object();
      break;
  }
}

void emit_process_name(json::Writer& w, int pid, const char* name) {
  w.begin_object();
  w.key("name");
  w.value("process_name");
  w.key("ph");
  w.value("M");
  w.key("pid");
  w.value(pid);
  w.key("tid");
  w.value(0);
  w.key("args");
  w.begin_object();
  w.key("name");
  w.value(name);
  w.end_object();
  w.end_object();
}

/// Copies one source event into the merged stream under `pid`, with its
/// timestamp shifted by `offset_us` onto the common timeline.
void emit_shifted(json::Writer& w, const json::Value& e, int pid,
                  double offset_us) {
  w.begin_object();
  w.key("name");
  w.value(str_or(e.find("name"), ""));
  w.key("cat");
  w.value(str_or(e.find("cat"), "ftl"));
  const std::string ph = str_or(e.find("ph"), "X");
  w.key("ph");
  w.value(ph);
  w.key("ts");
  w.value(num_or(e.find("ts"), 0.0) + offset_us);
  if (ph == "X") {
    w.key("dur");
    w.value(num_or(e.find("dur"), 0.0));
  } else if (const json::Value* s = e.find("s")) {
    w.key("s");
    write_value(w, *s);
  }
  w.key("pid");
  w.value(pid);
  w.key("tid");
  w.value(num_or(e.find("tid"), 0.0));
  if (const json::Value* args = e.find("args")) {
    w.key("args");
    write_value(w, *args);
  }
  w.end_object();
}

StageStats digest(std::string name, std::vector<double>& samples) {
  StageStats s;
  s.name = std::move(name);
  s.count = samples.size();
  if (samples.empty()) return s;
  double sum = 0.0;
  for (const double x : samples) sum += x;
  s.mean_us = sum / static_cast<double>(samples.size());
  std::sort(samples.begin(), samples.end());
  const auto q = [&](double p) {
    const double idx = p * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
  };
  s.p50_us = q(0.50);
  s.p95_us = q(0.95);
  s.p99_us = q(0.99);
  return s;
}

void emit_stage(json::Writer& w, const StageStats& s) {
  w.begin_object();
  w.key("name");
  w.value(s.name);
  w.key("count");
  w.value(static_cast<std::uint64_t>(s.count));
  w.key("mean_us");
  w.value(s.mean_us);
  w.key("p50_us");
  w.value(s.p50_us);
  w.key("p95_us");
  w.value(s.p95_us);
  w.key("p99_us");
  w.value(s.p99_us);
  w.end_object();
}

}  // namespace

TraceMergeResult merge_traces(const std::string& client_json,
                              const std::string& server_json) {
  TraceMergeResult out;

  const std::optional<json::Value> client_root = json::parse(client_json);
  if (!client_root) {
    out.error = "client trace: JSON parse failed";
    return out;
  }
  const std::optional<json::Value> server_root = json::parse(server_json);
  if (!server_root) {
    out.error = "server trace: JSON parse failed";
    return out;
  }
  TraceDoc client, server;
  if (!parse_doc(*client_root, client, out.error, "client trace") ||
      !parse_doc(*server_root, server, out.error, "server trace")) {
    return out;
  }
  out.client_events = client.events->array.size();
  out.server_events = server.events->array.size();

  // Common timeline: the earlier tracer start is the origin; each file's
  // events shift by its start's distance from it (microseconds, matching
  // trace-event `ts` units).
  const std::uint64_t base_ns =
      std::min(client.t0_steady_ns, server.t0_steady_ns);
  const double client_off_us =
      static_cast<double>(client.t0_steady_ns - base_ns) / 1000.0;
  const double server_off_us =
      static_cast<double>(server.t0_steady_ns - base_ns) / 1000.0;

  // Index the client's batch spans and the server's stage spans by trace
  // id (the 16-hex-digit string form is the key — no need to re-parse).
  std::map<std::string, Span> client_batches;
  for (const json::Value& e : client.events->array) {
    if (str_or(e.find("name"), "") != "batch_rtt") continue;
    const std::string tid = arg_str(e, "trace_id");
    if (tid.empty()) continue;
    Span& span = client_batches[tid];
    if (!span.present) {
      span = {num_or(e.find("ts"), 0.0), num_or(e.find("dur"), 0.0), true};
    }
  }
  out.traces_client = client_batches.size();

  std::map<std::string, ServerTrace> server_traces;
  for (const json::Value& e : server.events->array) {
    const std::string name = str_or(e.find("name"), "");
    const std::string tid = arg_str(e, "trace_id");
    if (name == "deadline_hit") {
      ++out.deadline_hits;
      continue;
    }
    if (name == "deadline_miss") {
      ++out.deadline_misses[arg_str(e, "stage")];
      continue;
    }
    if (tid.empty()) continue;
    const int idx = stage_index(name);
    if (idx < 0) {
      if (name == "serve_batch") server_traces[tid];  // count the trace
      continue;
    }
    Span& span = server_traces[tid].stages[idx];
    if (!span.present) {
      span = {num_or(e.find("ts"), 0.0), num_or(e.find("dur"), 0.0), true};
    }
  }
  out.traces_server = server_traces.size();

  // Join and decompose. The six attribution components partition the RTT:
  // rtt = wire_in + admission + pair_acquire + decide + reply_write
  //       + wire_out, all measured on the rebased common timeline.
  std::vector<double> samples_rtt;
  std::vector<double> samples[7];  // wire_in, 5 server stages, wire_out
  std::vector<double> samples_sum;
  for (const auto& [tid, batch] : client_batches) {
    const auto it = server_traces.find(tid);
    if (it == server_traces.end()) continue;
    const ServerTrace& st = it->second;
    bool complete = true;
    for (int i = 1; i < 5; ++i) complete = complete && st.stages[i].present;
    if (!complete) continue;
    ++out.traces_joined;

    const double client_start = batch.ts_us + client_off_us;
    const double client_end = client_start + batch.dur_us;
    const double admission_start = st.stages[1].ts_us + server_off_us;
    const double write_end =
        st.stages[4].ts_us + st.stages[4].dur_us + server_off_us;

    const double wire_in = admission_start - client_start;
    const double wire_out = client_end - write_end;
    samples[0].push_back(wire_in);
    if (st.stages[0].present) samples[1].push_back(st.stages[0].dur_us);
    double server_sum = 0.0;
    for (int i = 1; i < 5; ++i) {
      samples[1 + i].push_back(st.stages[i].dur_us);
      server_sum += st.stages[i].dur_us;
    }
    samples[6].push_back(wire_out);
    samples_rtt.push_back(batch.dur_us);
    samples_sum.push_back(wire_in + server_sum + wire_out);
  }

  static const char* kComponentNames[7] = {
      "wire_in",      "socket_read", "admission", "pair_acquire",
      "decide",       "reply_write", "wire_out"};
  for (int i = 0; i < 7; ++i) {
    out.stages.push_back(digest(kComponentNames[i], samples[i]));
  }
  out.rtt = digest("rtt", samples_rtt);
  if (!samples_sum.empty()) {
    double sum = 0.0;
    for (const double x : samples_sum) sum += x;
    out.mean_attributed_us = sum / static_cast<double>(samples_sum.size());
    if (out.rtt.mean_us > 0.0) {
      out.attributed_fraction = out.mean_attributed_us / out.rtt.mean_us;
    }
  }

  // Merged Perfetto document: client = pid 1, server = pid 2.
  {
    json::Writer w;
    w.begin_object();
    w.key("displayTimeUnit");
    w.value("ms");
    w.key("otherData");
    w.begin_object();
    w.key("t0_steady_ns");
    w.value(std::to_string(base_ns));
    w.key("merged_from");
    w.begin_array();
    w.value("loadgen");
    w.value("ftlcoordd");
    w.end_array();
    w.end_object();
    w.key("traceEvents");
    w.begin_array();
    emit_process_name(w, 1, "loadgen");
    emit_process_name(w, 2, "ftlcoordd");
    for (const json::Value& e : client.events->array) {
      emit_shifted(w, e, 1, client_off_us);
    }
    for (const json::Value& e : server.events->array) {
      emit_shifted(w, e, 2, server_off_us);
    }
    w.end_array();
    w.end_object();
    out.merged_json = w.take();
  }

  // Attribution summary.
  {
    json::Writer w;
    w.begin_object();
    w.key("schema");
    w.value("ftl.obs.trace_summary/v1");
    w.key("client_events");
    w.value(static_cast<std::uint64_t>(out.client_events));
    w.key("server_events");
    w.value(static_cast<std::uint64_t>(out.server_events));
    w.key("traces");
    w.begin_object();
    w.key("client");
    w.value(static_cast<std::uint64_t>(out.traces_client));
    w.key("server");
    w.value(static_cast<std::uint64_t>(out.traces_server));
    w.key("joined");
    w.value(static_cast<std::uint64_t>(out.traces_joined));
    w.end_object();
    w.key("stages");
    w.begin_array();
    for (const StageStats& s : out.stages) emit_stage(w, s);
    w.end_array();
    w.key("rtt");
    emit_stage(w, out.rtt);
    w.key("attribution");
    w.begin_object();
    w.key("components");
    w.begin_array();
    for (int i = 0; i < 7; ++i) {
      if (i != 1) w.value(kComponentNames[i]);  // socket_read excluded
    }
    w.end_array();
    w.key("mean_sum_us");
    w.value(out.mean_attributed_us);
    w.key("mean_rtt_us");
    w.value(out.rtt.mean_us);
    w.key("attributed_fraction");
    w.value(out.attributed_fraction);
    w.end_object();
    w.key("deadline");
    w.begin_object();
    w.key("hits");
    w.value(out.deadline_hits);
    std::uint64_t total_misses = 0;
    for (const auto& [stage, n] : out.deadline_misses) total_misses += n;
    w.key("total_misses");
    w.value(total_misses);
    w.key("misses");
    w.begin_object();
    for (const auto& [stage, n] : out.deadline_misses) {
      w.key(stage);
      w.value(n);
    }
    w.end_object();
    w.end_object();
    w.end_object();
    out.summary_json = w.take();
  }

  out.ok = true;
  return out;
}

}  // namespace ftl::benchtool

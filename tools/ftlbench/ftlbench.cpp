// ftlbench — continuous-benchmarking driver for the bench suite.
//
//   ftlbench run --bench-dir=build/bench [--out-dir=.] [--benches=a,b]
//                [--seed=42] [--repetitions=1] [--filter=<gbench regex>]
//                [--metrics-every=<ms>] [--verbose]
//       Runs each bench binary with a pinned seed, collects its
//       `ftl.obs.run_report/v1`, and appends one entry per repetition to
//       `<out-dir>/BENCH_<name>.json` (schema ftl.obs.bench_trajectory/v1).
//
//   ftlbench compare <baseline> <candidate> [--metric=wall_time_s[,...]]
//                [--threshold=1.25] [--confidence=0.95] [--resamples=2000]
//                [--boot-seed=1]
//       Baseline/candidate are trajectory files or directories of
//       BENCH_*.json. Prints a per-(bench, metric) table with the
//       bootstrap CI of the candidate/baseline mean ratio. Exit status:
//       0 = no regression, 1 = at least one metric regressed beyond the
//       threshold with a CI excluding 1.0, 2 = usage or I/O error.
//
//   ftlbench export <run_report.json> [--prefix=ftl_]
//       Re-serializes a run report's metrics in the Prometheus text
//       exposition format on stdout (pushgateway / textfile collector).
//
//   ftlbench trace-merge <client_trace.json> <server_trace.json>
//                [--out=merged.json] [--summary-out=summary.json]
//       Joins a loadgen trace and a ftlcoordd trace by trace id onto one
//       steady-clock timeline. --out writes the merged Chrome/Perfetto
//       document; --summary-out writes the ftl.obs.trace_summary/v1
//       stage-attribution JSON (also printed to stdout when neither flag
//       is given).
//
//   ftlbench profile <bench> --bench-dir=<dir> [--out=<path>] [--hz=99]
//                [--seed=N] [--filter=<regex>] [--format=folded|speedscope]
//                [--top=15]
//       Runs one bench binary under the in-process sampling profiler and
//       writes the profile (default `<bench>.folded`). For folded output,
//       prints the top-N frames by self weight.
//
//   ftlbench profile-diff <baseline.folded> <candidate.folded> [--top=20]
//                [--gate-pp=<points>]
//       Per-frame delta table between two folded profiles, sorted by
//       absolute movement of each frame's share of total CPU (percentage
//       points). With --gate-pp, exits 1 when any frame moved more than
//       the gate — a regression-style check for profile drift.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "ftlbench/compare.hpp"
#include "ftlbench/profile.hpp"
#include "ftlbench/runner.hpp"
#include "ftlbench/tracemerge.hpp"
#include "ftlbench/trajectory.hpp"
#include "obs/export.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

namespace fs = std::filesystem;
using namespace ftl;
using namespace ftl::benchtool;

int usage(std::ostream& out) {
  out << "usage:\n"
         "  ftlbench run --bench-dir=<dir> [--out-dir=.] [--benches=a,b]\n"
         "               [--seed=42] [--repetitions=1] [--filter=<regex>]\n"
         "               [--metrics-every=<ms>] [--verbose]\n"
         "  ftlbench compare <baseline> <candidate>\n"
         "               [--metric=wall_time_s[,...]] [--threshold=1.25]\n"
         "               [--confidence=0.95] [--resamples=2000] "
         "[--boot-seed=1]\n"
         "  ftlbench export <run_report.json> [--prefix=ftl_]\n"
         "  ftlbench trace-merge <client_trace.json> <server_trace.json>\n"
         "               [--out=merged.json] [--summary-out=summary.json]\n"
         "  ftlbench profile <bench> --bench-dir=<dir> [--out=<path>]\n"
         "               [--hz=99] [--seed=N] [--filter=<regex>]\n"
         "               [--format=folded|speedscope] [--top=15]\n"
         "  ftlbench profile-diff <baseline.folded> <candidate.folded>\n"
         "               [--top=20] [--gate-pp=<points>]\n";
  return 2;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

/// Trajectory files addressed by a CLI path: the file itself, or every
/// BENCH_*.json inside a directory, keyed by file name.
std::map<std::string, std::string> trajectory_files(const std::string& path) {
  std::map<std::string, std::string> files;
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    for (const fs::directory_entry& e : fs::directory_iterator(path, ec)) {
      const std::string name = e.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 && e.path().extension() == ".json")
        files[name] = e.path().string();
    }
  } else {
    files[fs::path(path).filename().string()] = path;
  }
  return files;
}

int cmd_run(const util::Args& args) {
  RunConfig config;
  config.bench_dir = args.get("bench-dir", std::string());
  if (config.bench_dir.empty()) {
    std::cerr << "ftlbench run: --bench-dir is required\n";
    return 2;
  }
  config.out_dir = args.get("out-dir", std::string("."));
  config.benches = split_csv(args.get("benches", std::string()));
  config.seed = static_cast<std::uint64_t>(
      args.get("seed", static_cast<long long>(42)));
  config.repetitions = args.get("repetitions", static_cast<std::size_t>(1));
  config.gbench_filter = args.get("filter", std::string());
  config.metrics_every_ms = static_cast<std::uint64_t>(
      args.get("metrics-every", static_cast<long long>(0)));
  config.verbose = args.get("verbose", false);

  const int failures = run_all(config, std::cout);
  if (failures != 0) {
    std::cerr << "ftlbench run: " << failures << " run(s) failed\n";
    return 2;
  }
  return 0;
}

int cmd_compare(const util::Args& args) {
  if (args.positional().size() != 3) {  // "compare" + two paths
    std::cerr << "ftlbench compare: need <baseline> <candidate>\n";
    return 2;
  }
  CompareOptions opts;
  opts.metrics = split_csv(args.get("metric", std::string("wall_time_s")));
  opts.threshold = args.get("threshold", 1.25);
  opts.confidence = args.get("confidence", 0.95);
  opts.resamples = args.get("resamples", static_cast<std::size_t>(2000));
  opts.seed = static_cast<std::uint64_t>(
      args.get("boot-seed", static_cast<long long>(1)));
  if (opts.threshold <= 1.0) {
    std::cerr << "ftlbench compare: --threshold must be > 1\n";
    return 2;
  }

  const std::map<std::string, std::string> base_files =
      trajectory_files(args.positional()[1]);
  const std::map<std::string, std::string> cand_files =
      trajectory_files(args.positional()[2]);
  if (base_files.empty() || cand_files.empty()) {
    std::cerr << "ftlbench compare: no trajectory files found\n";
    return 2;
  }

  util::Table table({"bench", "metric", "n(base)", "n(cand)", "ratio",
                     "ci-lo", "ci-hi", "verdict"});
  table.set_precision(4);
  bool any_regressed = false;
  std::size_t pairs = 0;
  for (const auto& [name, base_path] : base_files) {
    const auto it = cand_files.find(name);
    if (it == cand_files.end()) {
      std::cerr << "note: " << name << " has no candidate counterpart\n";
      continue;
    }
    const std::optional<Trajectory> base = load_trajectory(base_path);
    const std::optional<Trajectory> cand = load_trajectory(it->second);
    if (!base || !cand) {
      std::cerr << "ftlbench compare: invalid trajectory in " << name << "\n";
      return 2;
    }
    ++pairs;
    const CompareReport report = compare_trajectories(*base, *cand, opts);
    any_regressed = any_regressed || report.any_regressed();
    for (const MetricComparison& row : report.rows) {
      const char* verdict = row.n_baseline == 0 || row.n_candidate == 0
                                ? "no-data"
                            : row.regressed ? "REGRESSED"
                            : row.improved  ? "improved"
                                            : "ok";
      table.add_row({row.bench, row.metric,
                     static_cast<long long>(row.n_baseline),
                     static_cast<long long>(row.n_candidate), row.ci.ratio,
                     row.ci.lo, row.ci.hi, std::string(verdict)});
    }
  }
  if (pairs == 0) {
    std::cerr << "ftlbench compare: no common bench trajectories\n";
    return 2;
  }
  table.print(std::cout);
  if (any_regressed) {
    std::cout << "\nREGRESSION: candidate exceeds " << opts.threshold
              << "x baseline on at least one gated metric\n";
    return 1;
  }
  std::cout << "\nno regression beyond " << opts.threshold << "x detected\n";
  return 0;
}

int cmd_export(const util::Args& args) {
  if (args.positional().size() != 2) {  // "export" + report path
    std::cerr << "ftlbench export: need <run_report.json>\n";
    return 2;
  }
  std::ifstream in(args.positional()[1]);
  if (!in) {
    std::cerr << "ftlbench export: cannot read " << args.positional()[1]
              << "\n";
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::optional<obs::ParsedRunReport> report =
      obs::parse_run_report(buf.str());
  if (!report) {
    std::cerr << "ftlbench export: not a valid ftl.obs.run_report/v1 file\n";
    return 2;
  }
  obs::ExportOptions opts;
  opts.prefix = args.get("prefix", std::string("ftl_"));
  std::cout << obs::prometheus_text(report->metrics, opts);
  return 0;
}

std::optional<std::string> slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool spill(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return false;
  out << text << '\n';
  return static_cast<bool>(out);
}

int cmd_trace_merge(const util::Args& args) {
  if (args.positional().size() != 3) {  // "trace-merge" + two paths
    std::cerr << "ftlbench trace-merge: need <client_trace> <server_trace>\n";
    return 2;
  }
  const std::optional<std::string> client = slurp(args.positional()[1]);
  const std::optional<std::string> server = slurp(args.positional()[2]);
  if (!client || !server) {
    std::cerr << "ftlbench trace-merge: cannot read "
              << (!client ? args.positional()[1] : args.positional()[2])
              << "\n";
    return 2;
  }
  const TraceMergeResult merged = merge_traces(*client, *server);
  if (!merged.ok) {
    std::cerr << "ftlbench trace-merge: " << merged.error << "\n";
    return 2;
  }
  const std::string out_path = args.get("out", std::string());
  const std::string summary_path = args.get("summary-out", std::string());
  if (!out_path.empty() && !spill(out_path, merged.merged_json)) {
    std::cerr << "ftlbench trace-merge: cannot write " << out_path << "\n";
    return 2;
  }
  if (!summary_path.empty() && !spill(summary_path, merged.summary_json)) {
    std::cerr << "ftlbench trace-merge: cannot write " << summary_path << "\n";
    return 2;
  }
  if (out_path.empty() && summary_path.empty()) {
    std::cout << merged.summary_json << "\n";
  } else {
    std::cerr << "trace-merge: joined " << merged.traces_joined << " of "
              << merged.traces_client << " client / " << merged.traces_server
              << " server traces; mean RTT " << merged.rtt.mean_us
              << " us, attributed fraction " << merged.attributed_fraction
              << "\n";
  }
  return 0;
}

int cmd_profile(const util::Args& args) {
  if (args.positional().size() != 2) {  // "profile" + bench name
    std::cerr << "ftlbench profile: need <bench>\n";
    return 2;
  }
  ProfiledRunConfig config;
  config.bench = args.positional()[1];
  config.bench_dir = args.get("bench-dir", std::string());
  if (config.bench_dir.empty()) {
    std::cerr << "ftlbench profile: --bench-dir is required\n";
    return 2;
  }
  config.hz = static_cast<int>(args.get("hz", 99LL));
  config.format = args.get("format", std::string("folded"));
  if (config.format != "folded" && config.format != "speedscope") {
    std::cerr << "ftlbench profile: unknown --format '" << config.format
              << "'\n";
    return 2;
  }
  config.gbench_filter = args.get("filter", std::string());
  if (args.has("seed")) {
    config.has_seed = true;
    config.seed =
        static_cast<std::uint64_t>(args.get("seed", 42LL));
  }
  const std::string default_out =
      config.bench +
      (config.format == "folded" ? ".folded" : ".speedscope.json");
  config.out_path = args.get("out", default_out);
  config.log_path = "." + config.bench + ".profile.log.tmp";

  std::string error;
  if (!run_bench_profiled(config, error)) {
    std::cerr << "ftlbench profile: " << error << "\n";
    return 2;
  }
  std::cout << "profile (" << config.format << ", " << config.hz
            << " Hz) written to " << config.out_path << "\n";
  if (config.format != "folded") return 0;

  // Top frames by self weight: the flamegraph's widest leaves, as text.
  const std::optional<std::string> text = slurp(config.out_path);
  FoldedProfile profile;
  if (!text || !parse_folded(*text, profile, error)) {
    std::cerr << "ftlbench profile: unreadable profile output: " << error
              << "\n";
    return 2;
  }
  const std::size_t top = args.get("top", static_cast<std::size_t>(15));
  std::vector<std::pair<std::string, FrameStat>> frames;
  for (auto& kv : frame_stats(profile)) frames.push_back(std::move(kv));
  std::sort(frames.begin(), frames.end(), [](const auto& a, const auto& b) {
    if (a.second.self != b.second.self) return a.second.self > b.second.self;
    return a.first < b.first;
  });
  util::Table table({"frame", "self", "self %", "total %"});
  table.set_precision(2);
  const double total = profile.total_samples > 0
                           ? static_cast<double>(profile.total_samples)
                           : 1.0;
  for (std::size_t i = 0; i < frames.size() && i < top; ++i) {
    const auto& [frame, stat] = frames[i];
    table.add_row({frame, static_cast<long long>(stat.self),
                   100.0 * static_cast<double>(stat.self) / total,
                   100.0 * static_cast<double>(stat.total) / total});
  }
  std::cout << profile.total_samples << " samples, " << profile.stacks.size()
            << " unique stacks\n";
  table.print(std::cout);
  return 0;
}

int cmd_profile_diff(const util::Args& args) {
  if (args.positional().size() != 3) {  // "profile-diff" + two paths
    std::cerr << "ftlbench profile-diff: need <baseline> <candidate>\n";
    return 2;
  }
  FoldedProfile base, cand;
  for (const auto& [which, out] :
       {std::pair<int, FoldedProfile*>{1, &base}, {2, &cand}}) {
    const std::string& path = args.positional()[static_cast<std::size_t>(which)];
    const std::optional<std::string> text = slurp(path);
    std::string error;
    if (!text || !parse_folded(*text, *out, error)) {
      std::cerr << "ftlbench profile-diff: cannot parse " << path
                << (text ? ": " + error : ": unreadable") << "\n";
      return 2;
    }
  }
  const std::vector<FrameDelta> deltas = diff_profiles(base, cand);
  const std::size_t top = args.get("top", static_cast<std::size_t>(20));
  const double gate_pp = args.get("gate-pp", 0.0);

  util::Table table({"frame", "base %", "cand %", "delta pp"});
  table.set_precision(2);
  for (std::size_t i = 0; i < deltas.size() && i < top; ++i) {
    const FrameDelta& d = deltas[i];
    table.add_row({d.frame, d.base_pct, d.cand_pct, d.delta_pp});
  }
  std::cout << "baseline " << base.total_samples << " samples, candidate "
            << cand.total_samples << " samples, " << deltas.size()
            << " frames compared\n";
  table.print(std::cout);
  if (gate_pp > 0.0 && !deltas.empty() &&
      std::abs(deltas.front().delta_pp) > gate_pp) {
    std::cout << "\nPROFILE DRIFT: top mover '" << deltas.front().frame
              << "' moved " << deltas.front().delta_pp
              << "pp, beyond the " << gate_pp << "pp gate\n";
    return 1;
  }
  if (gate_pp > 0.0) {
    std::cout << "\nno frame moved beyond " << gate_pp << "pp\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv, /*allow_unknown=*/true);
  if (args.positional().empty()) return usage(std::cerr);
  const std::string& cmd = args.positional()[0];
  if (cmd == "run") return cmd_run(args);
  if (cmd == "compare") return cmd_compare(args);
  if (cmd == "export") return cmd_export(args);
  if (cmd == "trace-merge") return cmd_trace_merge(args);
  if (cmd == "profile") return cmd_profile(args);
  if (cmd == "profile-diff") return cmd_profile_diff(args);
  std::cerr << "ftlbench: unknown command '" << cmd << "'\n";
  return usage(std::cerr);
}

// Bench trajectory files: the append-only perf history behind
// `BENCH_<name>.json`.
//
// Schema (`ftl.obs.bench_trajectory/v1`):
//   {
//     "schema": "ftl.obs.bench_trajectory/v1",
//     "bench": "bench_qnet_timing",
//     "entries": [
//       {"git_rev": "...", "utc": "2026-08-06T12:00:00Z", "seed": 42,
//        "wall_time_s": 1.23, "cpu_time_s": 1.20,
//        "counters": {"qnet.pairs.delivered": 5312605, ...}},
//       ...
//     ]
//   }
// One file per bench binary; every `ftlbench run` appends one entry per
// repetition (the file is rewritten with the entry list extended — existing
// entries are never modified or dropped, so the history is append-only at
// the entry level). Counters are the run report's counters summed across
// label sets per name, which keeps entries comparable even when label
// cardinality changes between revisions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace ftl::benchtool {

inline constexpr std::string_view kTrajectorySchema =
    "ftl.obs.bench_trajectory/v1";

struct TrajectoryEntry {
  std::string git_rev;
  /// ISO-8601 UTC timestamp of the run, e.g. "2026-08-06T12:00:00Z".
  std::string utc;
  std::uint64_t seed = 0;
  double wall_time_s = 0.0;
  double cpu_time_s = 0.0;
  /// Selected counters by dotted name (label sets summed), sorted by name.
  std::vector<std::pair<std::string, double>> counters;

  /// Looks up a metric by key: "wall_time_s", "cpu_time_s", or a counter
  /// name. nullopt when the entry does not carry the counter.
  [[nodiscard]] std::optional<double> metric(std::string_view key) const;
};

struct Trajectory {
  std::string bench;
  std::vector<TrajectoryEntry> entries;
};

/// Canonical file name for a bench's trajectory: `BENCH_<bench>.json`
/// (a leading "bench_" in the binary name is dropped:
/// bench_qnet_timing -> BENCH_qnet_timing.json).
[[nodiscard]] std::string trajectory_filename(std::string_view bench);

/// Collapses a snapshot's counters into per-name sums (labels merged),
/// sorted by name — the `counters` object of a trajectory entry.
[[nodiscard]] std::vector<std::pair<std::string, double>> collapse_counters(
    const obs::Snapshot& snapshot);

[[nodiscard]] std::string trajectory_json(const Trajectory& t);

/// Strict parse; nullopt on syntax errors, a wrong schema tag, or missing
/// required fields.
[[nodiscard]] std::optional<Trajectory> parse_trajectory(
    std::string_view text);

/// Reads and parses `path`; nullopt when unreadable or invalid.
[[nodiscard]] std::optional<Trajectory> load_trajectory(
    const std::string& path);

/// Appends `entry` to the trajectory at `path`, creating the file when
/// absent. Fails (returns false) when the existing file is invalid or
/// records a different bench name — a corrupted history must not be
/// silently replaced.
bool append_entry(const std::string& path, const std::string& bench,
                  const TrajectoryEntry& entry);

}  // namespace ftl::benchtool

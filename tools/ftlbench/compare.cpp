#include "ftlbench/compare.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ftl::benchtool {

namespace {

double ratio_of(double baseline_mean, double candidate_mean) {
  if (baseline_mean == 0.0) {
    return candidate_mean == 0.0 ? 1.0
                                 : std::numeric_limits<double>::infinity();
  }
  return candidate_mean / baseline_mean;
}

double resampled_mean(const std::vector<double>& xs, util::Rng& rng) {
  double sum = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    sum += xs[rng.uniform_int(static_cast<std::uint64_t>(xs.size()))];
  return sum / static_cast<double>(xs.size());
}

}  // namespace

BootstrapCi bootstrap_ratio(const std::vector<double>& baseline,
                            const std::vector<double>& candidate,
                            std::size_t resamples, double confidence,
                            std::uint64_t seed) {
  FTL_ASSERT_MSG(!baseline.empty() && !candidate.empty(),
                 "bootstrap_ratio needs samples on both sides");
  FTL_ASSERT_MSG(confidence > 0.0 && confidence < 1.0,
                 "confidence must be in (0, 1)");

  BootstrapCi ci;
  ci.ratio = ratio_of(util::mean_of(baseline), util::mean_of(candidate));

  // Degenerate resampling (single samples, or resamples == 0) collapses the
  // CI to the point estimate; skip the work.
  if (resamples == 0 || (baseline.size() == 1 && candidate.size() == 1)) {
    ci.lo = ci.hi = ci.ratio;
    return ci;
  }

  util::Rng rng(seed);
  std::vector<double> ratios;
  ratios.reserve(resamples);
  for (std::size_t b = 0; b < resamples; ++b) {
    ratios.push_back(
        ratio_of(resampled_mean(baseline, rng), resampled_mean(candidate, rng)));
  }
  const double alpha = 1.0 - confidence;
  ci.lo = util::percentile(ratios, alpha / 2.0);
  ci.hi = util::percentile(std::move(ratios), 1.0 - alpha / 2.0);
  return ci;
}

MetricComparison compare_metric(const Trajectory& baseline,
                                const Trajectory& candidate,
                                const std::string& metric,
                                const CompareOptions& opts) {
  MetricComparison cmp;
  cmp.bench = candidate.bench.empty() ? baseline.bench : candidate.bench;
  cmp.metric = metric;

  std::vector<double> base, cand;
  for (const TrajectoryEntry& e : baseline.entries)
    if (const std::optional<double> v = e.metric(metric)) base.push_back(*v);
  for (const TrajectoryEntry& e : candidate.entries)
    if (const std::optional<double> v = e.metric(metric)) cand.push_back(*v);
  cmp.n_baseline = base.size();
  cmp.n_candidate = cand.size();
  if (base.empty() || cand.empty()) return cmp;  // no verdict without data

  cmp.ci = bootstrap_ratio(base, cand, opts.resamples, opts.confidence,
                           opts.seed);
  cmp.regressed = cmp.ci.ratio > opts.threshold && cmp.ci.lo > 1.0;
  cmp.improved = cmp.ci.ratio < 1.0 / opts.threshold && cmp.ci.hi < 1.0;
  return cmp;
}

CompareReport compare_trajectories(const Trajectory& baseline,
                                   const Trajectory& candidate,
                                   const CompareOptions& opts) {
  CompareReport report;
  for (const std::string& metric : opts.metrics)
    report.rows.push_back(compare_metric(baseline, candidate, metric, opts));
  return report;
}

}  // namespace ftl::benchtool

#include "ftlbench/trajectory.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "obs/json.hpp"

namespace ftl::benchtool {

std::optional<double> TrajectoryEntry::metric(std::string_view key) const {
  if (key == "wall_time_s") return wall_time_s;
  if (key == "cpu_time_s") return cpu_time_s;
  for (const auto& [name, value] : counters)
    if (name == key) return value;
  return std::nullopt;
}

std::string trajectory_filename(std::string_view bench) {
  std::string_view stem = bench;
  if (stem.rfind("bench_", 0) == 0) stem.remove_prefix(6);
  return "BENCH_" + std::string(stem) + ".json";
}

std::vector<std::pair<std::string, double>> collapse_counters(
    const obs::Snapshot& snapshot) {
  std::map<std::string, double> sums;
  for (const obs::CounterSample& c : snapshot.counters)
    sums[c.name] += static_cast<double>(c.value);
  return {sums.begin(), sums.end()};
}

std::string trajectory_json(const Trajectory& t) {
  obs::json::Writer w;
  w.begin_object();
  w.key("schema");
  w.value(kTrajectorySchema);
  w.key("bench");
  w.value(t.bench);
  w.key("entries");
  w.begin_array();
  for (const TrajectoryEntry& e : t.entries) {
    w.begin_object();
    w.key("git_rev");
    w.value(e.git_rev);
    w.key("utc");
    w.value(e.utc);
    w.key("seed");
    w.value(e.seed);
    w.key("wall_time_s");
    w.value(e.wall_time_s);
    w.key("cpu_time_s");
    w.value(e.cpu_time_s);
    w.key("counters");
    w.begin_object();
    for (const auto& [name, value] : e.counters) {
      w.key(name);
      w.value(value);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

std::optional<Trajectory> parse_trajectory(std::string_view text) {
  const std::optional<obs::json::Value> doc = obs::json::parse(text);
  if (!doc || !doc->is_object()) return std::nullopt;

  const obs::json::Value* schema = doc->find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != kTrajectorySchema)
    return std::nullopt;

  Trajectory t;
  const obs::json::Value* bench = doc->find("bench");
  if (bench == nullptr || !bench->is_string()) return std::nullopt;
  t.bench = bench->string;

  const obs::json::Value* entries = doc->find("entries");
  if (entries == nullptr || !entries->is_array()) return std::nullopt;
  for (const obs::json::Value& v : entries->array) {
    if (!v.is_object()) return std::nullopt;
    TrajectoryEntry e;
    const obs::json::Value* git_rev = v.find("git_rev");
    const obs::json::Value* utc = v.find("utc");
    const obs::json::Value* seed = v.find("seed");
    const obs::json::Value* wall = v.find("wall_time_s");
    const obs::json::Value* cpu = v.find("cpu_time_s");
    const obs::json::Value* counters = v.find("counters");
    if (git_rev == nullptr || !git_rev->is_string() || utc == nullptr ||
        !utc->is_string() || seed == nullptr || !seed->is_number() ||
        wall == nullptr || !wall->is_number() || cpu == nullptr ||
        !cpu->is_number() || counters == nullptr || !counters->is_object())
      return std::nullopt;
    e.git_rev = git_rev->string;
    e.utc = utc->string;
    e.seed = static_cast<std::uint64_t>(seed->number);
    e.wall_time_s = wall->number;
    e.cpu_time_s = cpu->number;
    for (const auto& [name, value] : counters->object) {
      if (!value.is_number()) return std::nullopt;
      e.counters.emplace_back(name, value.number);
    }
    t.entries.push_back(std::move(e));
  }
  return t;
}

std::optional<Trajectory> load_trajectory(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_trajectory(buf.str());
}

bool append_entry(const std::string& path, const std::string& bench,
                  const TrajectoryEntry& entry) {
  Trajectory t;
  if (std::ifstream probe(path); probe) {
    std::optional<Trajectory> existing = load_trajectory(path);
    if (!existing || existing->bench != bench) return false;
    t = std::move(*existing);
  } else {
    t.bench = bench;
  }
  t.entries.push_back(entry);

  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << trajectory_json(t) << '\n';
  return static_cast<bool>(out);
}

}  // namespace ftl::benchtool

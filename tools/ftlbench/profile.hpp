// CPU-profile tooling for `ftlbench profile` / `ftlbench profile-diff`:
// parse FlameGraph folded stacks (what the benches' --profile-out and the
// daemon's /profile emit), aggregate per-frame self/total weight, and diff
// two profiles into a regression-style top-movers table.
//
// Folded format, one stack per line, root-first frames joined by ';':
//   main;run_stepped;LiveBroker::decide 42
// The trailing integer is the sample count for that exact stack.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace ftl::benchtool {

/// A parsed folded-stacks profile: unique stacks with their sample counts.
struct FoldedProfile {
  std::map<std::string, std::uint64_t> stacks;  // "a;b;c" -> samples
  std::uint64_t total_samples = 0;
};

/// Strict parse of folded-stacks text. Empty lines are skipped; any other
/// line must be `<stack> <count>` with a positive integer count. Returns
/// false and sets `error` on the first malformed line (1-based line number
/// included). Duplicate stacks accumulate.
[[nodiscard]] bool parse_folded(std::string_view text, FoldedProfile& out,
                                std::string& error);

/// Per-frame weight within one profile. `self` counts samples whose leaf
/// is this frame; `total` counts samples with the frame anywhere on the
/// stack (recursive frames count once per stack, so total <= the
/// profile's total_samples).
struct FrameStat {
  std::uint64_t self = 0;
  std::uint64_t total = 0;
};

/// Aggregates per-frame statistics over every stack in the profile.
[[nodiscard]] std::map<std::string, FrameStat> frame_stats(
    const FoldedProfile& profile);

/// One row of a profile diff: a frame's share of total profile weight on
/// each side (percent of that side's samples) and the movement between
/// them in percentage points.
struct FrameDelta {
  std::string frame;
  double base_pct = 0.0;  // 100 * total(frame) / total_samples, baseline
  double cand_pct = 0.0;  // same, candidate
  double delta_pp = 0.0;  // cand_pct - base_pct
};

/// Per-frame delta table over the union of frames, sorted by |delta_pp|
/// descending (ties by frame name, so the output is deterministic).
/// Normalizing to each side's own total makes profiles of different
/// lengths comparable: a frame that moved from 10% to 30% of CPU shows
/// +20pp regardless of sample counts.
[[nodiscard]] std::vector<FrameDelta> diff_profiles(const FoldedProfile& base,
                                                    const FoldedProfile& cand);

/// Configuration for running one bench binary under the profiler.
struct ProfiledRunConfig {
  std::string bench_dir;        ///< directory holding the bench binaries
  std::string bench;            ///< binary name, e.g. "bench_fig4_load_balancing"
  std::string out_path;         ///< --profile-out target
  int hz = 99;                  ///< --profile-hz
  std::string format = "folded";  ///< --profile-format
  bool has_seed = false;        ///< pass --seed?
  std::uint64_t seed = 42;
  std::string gbench_filter;    ///< --benchmark_filter (empty = all)
  std::string log_path;         ///< child stdout/stderr (empty = inherit)
};

/// Runs the bench under profiling via std::system. `error` is set when the
/// binary is missing, exits nonzero, or writes no profile output.
[[nodiscard]] bool run_bench_profiled(const ProfiledRunConfig& config,
                                      std::string& error);

}  // namespace ftl::benchtool

#include "ftlbench/runner.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/export.hpp"

namespace ftl::benchtool {

namespace {

namespace fs = std::filesystem;

std::string utc_now() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// user+system CPU seconds accrued by waited-for children so far.
double children_cpu_s() {
  rusage ru{};
  if (getrusage(RUSAGE_CHILDREN, &ru) != 0) return 0.0;
  const auto tv_s = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return tv_s(ru.ru_utime) + tv_s(ru.ru_stime);
}

std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'')
      out += "'\\''";
    else
      out += c;
  }
  out += "'";
  return out;
}

}  // namespace

std::vector<std::string> discover_benches(const std::string& bench_dir) {
  std::vector<std::string> benches;
  std::error_code ec;
  for (const fs::directory_entry& e : fs::directory_iterator(bench_dir, ec)) {
    if (!e.is_regular_file(ec)) continue;
    const std::string name = e.path().filename().string();
    if (name.rfind("bench_", 0) != 0) continue;
    if (e.path().has_extension()) continue;  // skip .json etc.
    if ((e.status(ec).permissions() & fs::perms::owner_exec) ==
        fs::perms::none)
      continue;
    benches.push_back(name);
  }
  std::sort(benches.begin(), benches.end());
  return benches;
}

RunOutcome run_bench_once(const RunConfig& config, const std::string& bench) {
  RunOutcome outcome;
  outcome.bench = bench;

  const fs::path binary = fs::path(config.bench_dir) / bench;
  std::error_code ec;
  if (!fs::exists(binary, ec)) {
    outcome.error = "no such bench binary: " + binary.string();
    return outcome;
  }

  const fs::path report_path =
      fs::path(config.out_dir) / ("." + bench + ".report.tmp.json");
  const fs::path log_path =
      fs::path(config.out_dir) / ("." + bench + ".log.tmp");

  std::string cmd = shell_quote(binary.string());
  cmd += " --seed " + std::to_string(config.seed);
  cmd += " --metrics-out=" + shell_quote(report_path.string());
  if (!config.gbench_filter.empty())
    cmd += " --benchmark_filter=" + shell_quote(config.gbench_filter);
  if (config.metrics_every_ms > 0)
    cmd += " --metrics-every=" + std::to_string(config.metrics_every_ms);
  cmd += " >" + shell_quote(log_path.string()) + " 2>&1";

  const double cpu0 = children_cpu_s();
  const auto t0 = std::chrono::steady_clock::now();
  const int rc = std::system(cmd.c_str());
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double cpu_s = children_cpu_s() - cpu0;

  if (rc != 0) {
    outcome.error = bench + " exited with status " + std::to_string(rc) +
                    " (log: " + log_path.string() + ")";
    return outcome;
  }

  std::ifstream in(report_path);
  if (!in) {
    outcome.error = "bench wrote no run report at " + report_path.string();
    return outcome;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::optional<obs::ParsedRunReport> report =
      obs::parse_run_report(buf.str());
  if (!report) {
    outcome.error = "invalid run report at " + report_path.string();
    return outcome;
  }

  TrajectoryEntry& e = outcome.entry;
  e.git_rev = report->git_rev;
  e.utc = utc_now();
  e.seed = config.seed;
  // Prefer the bench's own in-process timings; the driver's measurements
  // (which include fork/exec and dynamic-loading overhead) are the
  // fallback for reports predating those fields.
  e.wall_time_s = report->wall_time_s > 0.0 ? report->wall_time_s : wall_s;
  e.cpu_time_s = report->cpu_time_s > 0.0 ? report->cpu_time_s : cpu_s;
  e.counters = collapse_counters(report->metrics);
  outcome.ok = true;

  if (!config.verbose) {
    fs::remove(report_path, ec);
    fs::remove(log_path, ec);
  }
  return outcome;
}

int run_all(const RunConfig& config, std::ostream& log) {
  std::vector<std::string> benches = config.benches;
  if (benches.empty()) benches = discover_benches(config.bench_dir);
  if (benches.empty()) {
    log << "ftlbench: no bench_* binaries found in " << config.bench_dir
        << "\n";
    return 1;
  }

  std::error_code ec;
  fs::create_directories(config.out_dir, ec);

  int failures = 0;
  for (const std::string& bench : benches) {
    for (std::size_t rep = 0; rep < config.repetitions; ++rep) {
      const RunOutcome outcome = run_bench_once(config, bench);
      if (!outcome.ok) {
        log << "FAIL " << bench << ": " << outcome.error << "\n";
        ++failures;
        continue;
      }
      const fs::path traj =
          fs::path(config.out_dir) / trajectory_filename(bench);
      if (!append_entry(traj.string(), bench, outcome.entry)) {
        log << "FAIL " << bench << ": could not append to " << traj.string()
            << " (corrupt trajectory or wrong bench name?)\n";
        ++failures;
        continue;
      }
      log << "ok   " << bench << " rep " << (rep + 1) << "/"
          << config.repetitions << "  wall " << outcome.entry.wall_time_s
          << "s  cpu " << outcome.entry.cpu_time_s << "s  -> "
          << traj.string() << "\n";
    }
  }
  return failures;
}

}  // namespace ftl::benchtool

#include "ftlbench/profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <system_error>

namespace ftl::benchtool {

namespace {

namespace fs = std::filesystem;

/// Single-quote shell quoting (same scheme the runner uses).
std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'')
      out += "'\\''";
    else
      out += c;
  }
  out += "'";
  return out;
}

bool parse_count(std::string_view digits, std::uint64_t& out) {
  if (digits.empty() || digits.size() > 19) return false;
  std::uint64_t v = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (v == 0) return false;
  out = v;
  return true;
}

}  // namespace

bool parse_folded(std::string_view text, FoldedProfile& out,
                  std::string& error) {
  out = FoldedProfile{};
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) {
      const std::size_t sp = line.rfind(' ');
      std::uint64_t count = 0;
      if (sp == std::string_view::npos || sp == 0 ||
          !parse_count(line.substr(sp + 1), count)) {
        error = "line " + std::to_string(line_no) +
                ": expected '<stack> <count>'";
        return false;
      }
      out.stacks[std::string(line.substr(0, sp))] += count;
      out.total_samples += count;
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  error.clear();
  return true;
}

std::map<std::string, FrameStat> frame_stats(const FoldedProfile& profile) {
  std::map<std::string, FrameStat> stats;
  std::set<std::string_view> seen;  // dedupe recursion within one stack
  for (const auto& [stack, count] : profile.stacks) {
    seen.clear();
    std::size_t pos = 0;
    const std::string_view sv(stack);
    std::string_view leaf;
    while (pos <= sv.size()) {
      const std::size_t sep = sv.find(';', pos);
      const std::string_view frame = sv.substr(
          pos, sep == std::string_view::npos ? std::string_view::npos
                                             : sep - pos);
      if (!frame.empty()) {
        leaf = frame;
        if (seen.insert(frame).second) {
          stats[std::string(frame)].total += count;
        }
      }
      if (sep == std::string_view::npos) break;
      pos = sep + 1;
    }
    if (!leaf.empty()) stats[std::string(leaf)].self += count;
  }
  return stats;
}

std::vector<FrameDelta> diff_profiles(const FoldedProfile& base,
                                      const FoldedProfile& cand) {
  const std::map<std::string, FrameStat> base_stats = frame_stats(base);
  const std::map<std::string, FrameStat> cand_stats = frame_stats(cand);
  const double base_total =
      base.total_samples > 0 ? static_cast<double>(base.total_samples) : 1.0;
  const double cand_total =
      cand.total_samples > 0 ? static_cast<double>(cand.total_samples) : 1.0;

  std::vector<FrameDelta> rows;
  rows.reserve(base_stats.size() + cand_stats.size());
  const auto pct_of = [](const std::map<std::string, FrameStat>& stats,
                         const std::string& frame, double total) {
    const auto it = stats.find(frame);
    return it == stats.end()
               ? 0.0
               : 100.0 * static_cast<double>(it->second.total) / total;
  };
  // Union walk: base_stats drives, then candidate-only frames.
  for (const auto& [frame, stat] : base_stats) {
    (void)stat;
    FrameDelta d;
    d.frame = frame;
    d.base_pct = pct_of(base_stats, frame, base_total);
    d.cand_pct = pct_of(cand_stats, frame, cand_total);
    d.delta_pp = d.cand_pct - d.base_pct;
    rows.push_back(std::move(d));
  }
  for (const auto& [frame, stat] : cand_stats) {
    (void)stat;
    if (base_stats.count(frame) != 0) continue;
    FrameDelta d;
    d.frame = frame;
    d.cand_pct = pct_of(cand_stats, frame, cand_total);
    d.delta_pp = d.cand_pct;
    rows.push_back(std::move(d));
  }
  std::sort(rows.begin(), rows.end(),
            [](const FrameDelta& a, const FrameDelta& b) {
              const double da = std::fabs(a.delta_pp);
              const double db = std::fabs(b.delta_pp);
              if (da != db) return da > db;
              return a.frame < b.frame;
            });
  return rows;
}

bool run_bench_profiled(const ProfiledRunConfig& config, std::string& error) {
  const fs::path binary = fs::path(config.bench_dir) / config.bench;
  std::error_code ec;
  if (!fs::exists(binary, ec)) {
    error = "no such bench binary: " + binary.string();
    return false;
  }
  std::string cmd = shell_quote(binary.string());
  cmd += " --profile-out=" + shell_quote(config.out_path);
  cmd += " --profile-hz " + std::to_string(config.hz);
  cmd += " --profile-format=" + shell_quote(config.format);
  if (config.has_seed) cmd += " --seed " + std::to_string(config.seed);
  if (!config.gbench_filter.empty())
    cmd += " --benchmark_filter=" + shell_quote(config.gbench_filter);
  if (!config.log_path.empty())
    cmd += " >" + shell_quote(config.log_path) + " 2>&1";

  const int rc = std::system(cmd.c_str());
  if (rc != 0) {
    error = config.bench + " exited with status " + std::to_string(rc);
    if (!config.log_path.empty()) error += " (log: " + config.log_path + ")";
    return false;
  }
  if (!fs::exists(config.out_path, ec) ||
      fs::file_size(config.out_path, ec) == 0) {
    error = config.bench + " wrote no profile at " + config.out_path +
            " (built with FTL_OBS_ENABLED=OFF?)";
    return false;
  }
  error.clear();
  return true;
}

}  // namespace ftl::benchtool

// Drives the bench binaries for `ftlbench run`: executes each bench with a
// pinned seed and a temporary `--metrics-out` run report, measures child
// wall/CPU time, and folds the result into the bench's trajectory file.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ftlbench/trajectory.hpp"

namespace ftl::benchtool {

struct RunConfig {
  /// Directory holding the bench binaries (e.g. build/bench).
  std::string bench_dir;
  /// Where BENCH_<name>.json trajectory files are appended.
  std::string out_dir = ".";
  /// Bench binaries to run; empty = every `bench_*` found in bench_dir.
  std::vector<std::string> benches;
  std::uint64_t seed = 42;
  /// Entries appended per bench (repeated runs feed the bootstrap CI).
  std::size_t repetitions = 1;
  /// --benchmark_filter passed through to google-benchmark; empty = all.
  /// "NONE" skips the timed loops but still runs each bench's
  /// reproduction/validation code — the quick-subset mode CI uses.
  std::string gbench_filter;
  /// Also pass --metrics-every=<ms> to each bench (0 = off).
  std::uint64_t metrics_every_ms = 0;
  bool verbose = false;
};

struct RunOutcome {
  std::string bench;
  bool ok = false;
  std::string error;  // non-empty when !ok
  TrajectoryEntry entry;
};

/// `bench_*` binaries in `bench_dir`, sorted by name.
[[nodiscard]] std::vector<std::string> discover_benches(
    const std::string& bench_dir);

/// Runs one bench once and builds its trajectory entry (not yet appended).
[[nodiscard]] RunOutcome run_bench_once(const RunConfig& config,
                                        const std::string& bench);

/// Runs every configured bench `repetitions` times, appending entries to
/// `<out_dir>/BENCH_<name>.json`. Logs per-run lines to `log`. Returns the
/// number of failed runs (0 = full success).
int run_all(const RunConfig& config, std::ostream& log);

}  // namespace ftl::benchtool

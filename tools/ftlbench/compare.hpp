// Statistical regression gate for bench trajectories.
//
// The comparator judges `candidate vs baseline` per (bench, metric) with a
// percentile-bootstrap confidence interval over the ratio of means:
// resample each side's entries with replacement, take the resampled mean
// ratio, and read the CI off the resampled distribution. A regression is
// declared only when the point ratio exceeds the threshold AND the CI
// excludes 1.0 — a single noisy run cannot trip the gate when repeated
// runs disagree, while deterministic counters (pinned seeds) gate tightly.
// With one entry per side the CI collapses to the point estimate, so a
// committed single-run baseline still gates (ratio > threshold alone).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ftlbench/trajectory.hpp"

namespace ftl::benchtool {

struct BootstrapCi {
  double ratio = 1.0;  // mean(candidate) / mean(baseline)
  double lo = 1.0;     // CI lower bound on the ratio
  double hi = 1.0;     // CI upper bound
};

/// Percentile-bootstrap CI for mean(candidate)/mean(baseline). Both inputs
/// must be non-empty. A zero baseline mean yields +Inf ratios (0/0 counts
/// as 1). Deterministic in `seed`.
[[nodiscard]] BootstrapCi bootstrap_ratio(const std::vector<double>& baseline,
                                          const std::vector<double>& candidate,
                                          std::size_t resamples,
                                          double confidence,
                                          std::uint64_t seed);

struct CompareOptions {
  /// Metric keys to gate on ("wall_time_s", "cpu_time_s", or counter
  /// names). Higher is worse for every key.
  std::vector<std::string> metrics = {"wall_time_s"};
  /// A candidate/baseline mean ratio beyond this regresses (2.0 = twice as
  /// slow). Must be > 1.
  double threshold = 1.25;
  double confidence = 0.95;
  std::size_t resamples = 2000;
  std::uint64_t seed = 1;
};

struct MetricComparison {
  std::string bench;
  std::string metric;
  std::size_t n_baseline = 0;
  std::size_t n_candidate = 0;
  BootstrapCi ci;
  bool regressed = false;  // ratio > threshold and CI excludes 1
  bool improved = false;   // ratio < 1/threshold and CI excludes 1
};

/// Compares one metric across two trajectories. Entries missing the metric
/// are skipped; when either side has no samples the comparison is returned
/// with n_* = 0 and no verdict.
[[nodiscard]] MetricComparison compare_metric(const Trajectory& baseline,
                                              const Trajectory& candidate,
                                              const std::string& metric,
                                              const CompareOptions& opts);

struct CompareReport {
  std::vector<MetricComparison> rows;
  [[nodiscard]] bool any_regressed() const {
    for (const MetricComparison& r : rows)
      if (r.regressed) return true;
    return false;
  }
};

/// Every requested metric of one trajectory pair.
[[nodiscard]] CompareReport compare_trajectories(const Trajectory& baseline,
                                                 const Trajectory& candidate,
                                                 const CompareOptions& opts);

}  // namespace ftl::benchtool

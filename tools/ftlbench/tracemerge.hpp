// trace-merge: join a loadgen trace and a ftlcoordd trace into one
// cross-process timeline plus a stage-attribution summary.
//
// Both processes run on one host and share the steady clock, and each
// trace file records its tracer's start position on that clock
// (`otherData.t0_steady_ns`). Re-basing every event onto the earlier of
// the two origins therefore needs no clock synchronization at all: the
// merged document is a plain Chrome/Perfetto trace where the client's
// batch_rtt span (pid 1) visually contains the daemon's serve_batch and
// stage spans (pid 2) for the same trace id.
//
// The summary answers the attribution question directly: for every trace
// id present in BOTH files, the batch round trip is decomposed into
//   wire_in | admission | pair_acquire | decide | reply_write | wire_out
// where wire_in runs from the client's send to the start of the daemon's
// admission stage (fiber + socket read) and wire_out from the end of the
// daemon's reply write back to the client's receive. The six components
// partition the RTT by construction, so their mean sum over joined traces
// matches the mean RTT — `attributed_fraction` reports how closely, and a
// value off 1.0 flags traces whose spans were dropped or truncated.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ftl::benchtool {

/// Percentile digest of one latency component over the joined traces.
struct StageStats {
  std::string name;
  std::size_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

struct TraceMergeResult {
  bool ok = false;
  std::string error;

  std::size_t client_events = 0;
  std::size_t server_events = 0;
  std::size_t traces_client = 0;  ///< distinct trace ids in the client file
  std::size_t traces_server = 0;  ///< distinct trace ids in the server file
  std::size_t traces_joined = 0;  ///< present in both (fully, all stages)

  /// Attribution components (wire_in, the four server stages, wire_out)
  /// plus socket_read (reported, but excluded from the attribution sum:
  /// the daemon's read stage starts when the *previous* reply finished,
  /// so under pipelining it overlaps client-side pacing, and its span is
  /// already covered by wire_in from the client's send onward).
  std::vector<StageStats> stages;
  StageStats rtt;  ///< client-side batch round trip

  double mean_attributed_us = 0.0;  ///< mean sum of the six components
  double attributed_fraction = 0.0;

  std::uint64_t deadline_hits = 0;
  std::map<std::string, std::uint64_t> deadline_misses;  ///< by stage

  std::string merged_json;   ///< Chrome/Perfetto trace document
  std::string summary_json;  ///< ftl.obs.trace_summary/v1 document
};

/// Merges two trace documents (client = loadgen, server = ftlcoordd).
/// Inputs are the raw JSON texts; on any structural problem `ok` is false
/// and `error` says what was missing.
[[nodiscard]] TraceMergeResult merge_traces(const std::string& client_json,
                                            const std::string& server_json);

}  // namespace ftl::benchtool
